// Portfolio racing across the mapper field (DESIGN.md §15).
//
// No single embedding algorithm wins everywhere: greedy is fast but
// myopic, the DP is chain-optimal but chain-only, annealing/NSGA-II need
// iterations, branch-and-bound needs small instances. The portfolio runs K
// mappers speculatively in parallel on the shared OrchestrationPool — each
// racer builds its own private mapping::Context overlay against the one
// borrowed substrate view, so racers never see each other — bounds the
// slow ones with a cooperative wall-clock deadline (ScopedMapDeadline) and
// commits exactly one winner: the feasible embedding minimizing
// EmbeddingScore::total(delay_weight), ties broken by (delay, penalty,
// racer index). Used as the ResourceOrchestrator's mapper, the winner then
// flows through the RO's existing conflict-checked commit path like any
// single-mapper embedding.
//
// Determinism: without a deadline the race is a pure function of
// (instance, racers) — every racer is deterministic per seed and the
// winner is picked by score, not by finishing order. A deadline trades
// that for tail-latency control: which racers get truncated depends on
// wall time.
//
// Telemetry: per-racer runs/wins/infeasibles/deadline-kills and wall time
// accumulate internally under a mutex (map() runs concurrently on batch
// workers; telemetry::Registry is not thread-safe) and are published by
// drain_metrics() under "mapping.portfolio.*" from single-threaded code.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "mapping/mapper.h"
#include "telemetry/metrics.h"

namespace unify::util {
class OrchestrationPool;
}  // namespace unify::util

namespace unify::mapping {

struct PortfolioOptions {
  /// Wall-clock budget per race; every racer sees it as a cooperative
  /// ScopedMapDeadline. 0 = no deadline (fully deterministic race).
  std::int64_t deadline_us = 0;
  /// Pool the racers run on; nullptr = the shared process pool. The race
  /// joins per batch, so racing inside a map_batch worker nests safely.
  util::OrchestrationPool* pool = nullptr;
  /// Scalarization used to pick the winner.
  double delay_weight = 1.0;
};

/// One racer's outcome in a race (index-aligned with the racer list).
struct RacerOutcome {
  std::string mapper;
  bool feasible = false;
  bool deadline_killed = false;  ///< failed with kTimeout
  std::int64_t wall_us = 0;
  EmbeddingScore score;  ///< valid when feasible
  std::string error;     ///< when !feasible
};

struct RaceReport {
  std::vector<RacerOutcome> outcomes;
  int winner = -1;  ///< index into outcomes; -1 = every racer failed
  Mapping mapping;  ///< the winning embedding (valid when winner >= 0)
};

class PortfolioMapper final : public Mapper {
 public:
  PortfolioMapper(std::vector<std::shared_ptr<const Mapper>> racers,
                  PortfolioOptions options = {});

  /// The standard seven-mapper field: greedy, chain-dp, backtracking,
  /// annealing, list-heft, nsga2, bnb — seeds and budgets from `base`.
  [[nodiscard]] static std::vector<std::shared_ptr<const Mapper>>
  standard_racers(MapperOptions base = {});

  [[nodiscard]] std::string name() const override { return "portfolio"; }

  /// Runs the full race and reports every lane. Errors only when the
  /// instance defeats all racers (the first racer's error is propagated).
  [[nodiscard]] Result<RaceReport> race(
      const sg::ServiceGraph& sg, const SubstrateView& substrate,
      const catalog::NfCatalog& catalog) const;

  /// Mapper interface: the race winner, renamed "portfolio/<racer>" so the
  /// committed deployment records which algorithm produced it.
  [[nodiscard]] Result<Mapping> map(
      const sg::ServiceGraph& sg, const SubstrateView& substrate,
      const catalog::NfCatalog& catalog) const override;

  [[nodiscard]] const std::vector<std::shared_ptr<const Mapper>>& racers()
      const noexcept {
    return racers_;
  }

  /// Moves the accumulated per-racer stats into `registry`:
  ///   mapping.portfolio.races                     (counter)
  ///   mapping.portfolio.<racer>.runs              (counter)
  ///   mapping.portfolio.<racer>.wins              (counter)
  ///   mapping.portfolio.<racer>.infeasible        (counter)
  ///   mapping.portfolio.<racer>.deadline_kills    (counter)
  ///   mapping.portfolio.<racer>.wall_us           (summary)
  /// Draining resets the internal stats, so periodic drains never double
  /// count. Call from single-threaded code (Registry is not thread-safe).
  void drain_metrics(telemetry::Registry& registry) const;

 private:
  struct RacerStats {
    std::uint64_t runs = 0;
    std::uint64_t wins = 0;
    std::uint64_t infeasible = 0;
    std::uint64_t deadline_kills = 0;
    std::vector<double> wall_us;
  };

  std::vector<std::shared_ptr<const Mapper>> racers_;
  PortfolioOptions options_;
  /// Guards stats_ only: map()/race() run concurrently on pool workers.
  mutable std::mutex stats_mutex_;
  mutable std::map<std::string, RacerStats> stats_;
  mutable std::uint64_t races_ = 0;
};

}  // namespace unify::mapping
