#include "mapping/context.h"

#include <algorithm>
#include <set>

#include "graph/algorithms.h"
#include "util/log.h"

namespace unify::mapping {

Context::Context(const sg::ServiceGraph& sg, const model::Nffg& substrate,
                 const catalog::NfCatalog& catalog)
    : sg_(&sg), catalog_(&catalog), work_(substrate) {
  index_.emplace(work_);
}

Result<model::Resources> Context::footprint(const sg::SgNf& nf) const {
  const auto key =
      std::make_tuple(nf.type, nf.requirement_override.cpu,
                      nf.requirement_override.mem,
                      nf.requirement_override.storage);
  const auto it = footprint_cache_.find(key);
  if (it != footprint_cache_.end()) return it->second;
  auto resolved = catalog_->footprint(nf.type, nf.requirement_override);
  if (resolved.ok()) footprint_cache_.emplace(key, *resolved);
  return resolved;
}

std::vector<std::string> Context::candidates(const sg::SgNf& nf) const {
  std::vector<std::string> hosts;
  const auto need = footprint(nf);
  if (!need.ok()) return hosts;
  for (const auto& [id, bb] : work_.bisbis()) {
    if (bb.supports_nf_type(nf.type) && bb.residual().fits(*need) &&
        constraint_allows(nf.id, id).ok()) {
      hosts.push_back(id);
    }
  }
  return hosts;  // std::map iteration is already id-ascending
}

Result<void> Context::constraint_allows(const std::string& nf_id,
                                        const std::string& host) const {
  for (const sg::PlacementConstraint& c : sg_->constraints()) {
    switch (c.kind) {
      case sg::ConstraintKind::kPin:
        if (c.nf_a == nf_id && c.host != host) {
          return Error{ErrorCode::kRejected,
                       nf_id + " is pinned to " + c.host};
        }
        break;
      case sg::ConstraintKind::kForbid:
        if (c.nf_a == nf_id && c.host == host) {
          return Error{ErrorCode::kRejected,
                       nf_id + " is forbidden on " + host};
        }
        break;
      case sg::ConstraintKind::kAntiAffinity: {
        const std::string& peer =
            c.nf_a == nf_id ? c.nf_b : (c.nf_b == nf_id ? c.nf_a : "");
        if (peer.empty()) break;
        const auto placed = placements_.find(peer);
        if (placed != placements_.end() && placed->second == host) {
          return Error{ErrorCode::kRejected,
                       nf_id + " anti-affine with " + peer + " on " + host};
        }
        break;
      }
    }
  }
  return Result<void>::success();
}

Result<void> Context::place(const std::string& nf_id,
                            const std::string& host) {
  const sg::SgNf* nf = sg_->find_nf(nf_id);
  if (nf == nullptr) {
    return Error{ErrorCode::kNotFound, "SG NF " + nf_id};
  }
  if (placements_.count(nf_id) != 0) {
    return Error{ErrorCode::kAlreadyExists, "NF " + nf_id + " already placed"};
  }
  UNIFY_RETURN_IF_ERROR(constraint_allows(nf_id, host));
  UNIFY_ASSIGN_OR_RETURN(const model::Resources need, footprint(*nf));
  model::NfInstance instance;
  instance.id = nf_id;
  instance.type = nf->type;
  instance.requirement = need;
  for (int p = 0; p < nf->port_count; ++p) {
    instance.ports.push_back(model::Port{p, ""});
  }
  UNIFY_RETURN_IF_ERROR(work_.place_nf(host, std::move(instance)));
  placements_.emplace(nf_id, host);
  return Result<void>::success();
}

void Context::unplace(const std::string& nf_id) {
  const auto it = placements_.find(nf_id);
  if (it == placements_.end()) return;
  (void)work_.remove_nf(it->second, nf_id);
  placements_.erase(it);
}

Result<std::string> Context::node_of(const std::string& sg_node) const {
  if (sg_->has_sap(sg_node)) {
    if (work_.find_sap(sg_node) == nullptr) {
      return Error{ErrorCode::kNotFound,
                   "SAP " + sg_node + " not present in substrate"};
    }
    return sg_node;
  }
  const auto it = placements_.find(sg_node);
  if (it == placements_.end()) {
    return Error{ErrorCode::kUnavailable, "NF " + sg_node + " not yet placed"};
  }
  return it->second;
}

const Context::PathEntry& Context::cached_path(graph::NodeId from,
                                               graph::NodeId to,
                                               double min_bw) const {
  const PathKey key{from, to, min_bw};
  const auto it = path_cache_.find(key);
  if (it != path_cache_.end()) {
    ++cache_stats_.hits;
    return it->second;
  }
  ++cache_stats_.misses;
  PathEntry entry;
  auto path = graph::shortest_path(workspace_, index_->graph().node_capacity(),
                                   from, to, index_->delay_scan(min_bw));
  if (path.has_value()) {
    entry.reachable = true;
    entry.delay = model::path_delay(*index_, *path);
    entry.path = std::move(*path);
  }
  return path_cache_.emplace(key, std::move(entry)).first->second;
}

void Context::invalidate_paths_crossing(
    const std::vector<graph::EdgeId>& edges) {
  for (auto it = path_cache_.begin(); it != path_cache_.end();) {
    const auto& cached = it->second.path.edges;
    const bool crosses =
        it->second.reachable &&
        std::any_of(cached.begin(), cached.end(), [&](graph::EdgeId e) {
          return std::binary_search(edges.begin(), edges.end(), e);
        });
    if (crosses) {
      ++cache_stats_.invalidations;
      it = path_cache_.erase(it);
    } else {
      ++it;
    }
  }
}

void Context::invalidate_paths_above(double floor_threshold) {
  for (auto it = path_cache_.begin(); it != path_cache_.end();) {
    if (std::get<2>(it->first) > floor_threshold) {
      it = path_cache_.erase(it);
      ++cache_stats_.invalidations;
    } else {
      ++it;
    }
  }
}

Result<PathInfo> Context::route(const sg::SgLink& link) {
  if (paths_.count(link.id) != 0) {
    return Error{ErrorCode::kAlreadyExists, "SG link " + link.id};
  }
  UNIFY_ASSIGN_OR_RETURN(const std::string from, node_of(link.from.node));
  UNIFY_ASSIGN_OR_RETURN(const std::string to, node_of(link.to.node));
  PathInfo info;
  if (from != to) {
    const auto from_id = index_->node_of(from);
    const auto to_id = index_->node_of(to);
    const PathEntry& entry = cached_path(from_id, to_id, link.bandwidth);
    if (!entry.reachable) {
      return Error{ErrorCode::kInfeasible,
                   "no path " + from + " -> " + to + " with " +
                       strings::format_double(link.bandwidth) + " Mbit/s"};
    }
    info.delay = entry.delay;
    // Snapshot before invalidation below evicts the entry we read from.
    std::vector<graph::EdgeId> edges = entry.path.edges;
    for (const graph::EdgeId e : edges) {
      const std::string& link_id = index_->graph().edge(e).data.link_id;
      info.links.push_back(link_id);
      work_.find_link(link_id)->reserved += link.bandwidth;
    }
    if (link.bandwidth > 0 && !edges.empty()) {
      // Reservations only shrink residuals: cached paths not crossing the
      // touched links stay optimal; those crossing them may now be masked.
      std::sort(edges.begin(), edges.end());
      invalidate_paths_crossing(edges);
    }
  }
  paths_.emplace(link.id, info);
  return info;
}

void Context::unroute(const std::string& sg_link_id) {
  const auto it = paths_.find(sg_link_id);
  if (it == paths_.end()) return;
  const sg::SgLink* link = sg_->find_link(sg_link_id);
  bool released = false;
  // A release on a link only unmasks it for queries whose bandwidth floor
  // exceeded its pre-release residual; entries at or below the smallest
  // such residual see an unchanged masked graph and stay valid.
  double stale_above = graph::kInf;
  if (link == nullptr) {
    UNIFY_LOG(kWarn, "mapping.ctx")
        << "unroute: SG link " << sg_link_id
        << " not in service graph; dropping path without releasing bandwidth";
  } else if (link->bandwidth > 0) {
    for (const std::string& substrate_link : it->second.links) {
      model::Link* reserved_on = work_.find_link(substrate_link);
      if (reserved_on == nullptr) {
        UNIFY_LOG(kWarn, "mapping.ctx")
            << "unroute " << sg_link_id << ": substrate link "
            << substrate_link << " vanished; skipping release";
        continue;
      }
      stale_above = std::min(stale_above, reserved_on->residual_bandwidth());
      reserved_on->reserved -= link->bandwidth;
      released = true;
    }
  }
  paths_.erase(it);
  if (released) invalidate_paths_above(stale_above);
}

Result<void> Context::route_all() {
  for (const sg::SgLink& link : sg_->links()) {
    if (is_routed(link.id)) continue;
    UNIFY_RETURN_IF_ERROR(route(link));
  }
  return Result<void>::success();
}

double Context::chain_delay(const sg::E2eRequirement& req) const {
  const auto chain = sg_->chain_for(req);
  if (!chain.ok()) return graph::kInf;
  double total = 0;
  for (const sg::SgLink* link : *chain) {
    const auto it = paths_.find(link->id);
    if (it != paths_.end()) total += it->second.delay;
  }
  return total;
}

Result<void> Context::check_requirements() const {
  for (const sg::E2eRequirement& req : sg_->requirements()) {
    const double delay = chain_delay(req);
    if (delay > req.max_delay) {
      return Error{ErrorCode::kInfeasible,
                   "requirement " + req.id + ": delay " +
                       strings::format_double(delay) + " ms exceeds " +
                       strings::format_double(req.max_delay) + " ms"};
    }
  }
  return Result<void>::success();
}

double Context::distance(const std::string& from, const std::string& to,
                         double min_bw) const {
  if (from == to) return 0;
  const auto from_id = index_->node_of(from);
  const auto to_id = index_->node_of(to);
  if (from_id == graph::kInvalidId || to_id == graph::kInvalidId) {
    return graph::kInf;
  }
  const PathEntry& entry = cached_path(from_id, to_id, min_bw);
  return entry.reachable ? entry.path.cost : graph::kInf;
}

double Context::node_penalty(const std::string& host) const noexcept {
  const model::BisBis* bb = work_.find_bisbis(host);
  return bb == nullptr ? 0.0 : bb->health_penalty;
}

Mapping Context::finish(std::string mapper_name) const {
  Mapping m;
  m.mapper_name = std::move(mapper_name);
  m.nf_host = placements_;
  m.link_paths = paths_;
  for (const sg::E2eRequirement& req : sg_->requirements()) {
    m.requirement_delay.emplace(req.id, chain_delay(req));
  }
  std::set<std::string> hosts;
  for (const auto& [nf, host] : placements_) hosts.insert(host);
  m.stats.nodes_used = hosts.size();
  m.stats.nfs_placed = placements_.size();
  for (const auto& [sg_link_id, info] : paths_) {
    m.stats.total_hops += info.links.size();
    const sg::SgLink* link = sg_->find_link(sg_link_id);
    m.stats.bandwidth_hops +=
        link->bandwidth * static_cast<double>(info.links.size());
  }
  return m;
}

void Context::publish_cache_metrics(telemetry::Registry& registry) const {
  registry.add("mapping.path_cache.hits", cache_stats_.hits);
  registry.add("mapping.path_cache.misses", cache_stats_.misses);
  registry.add("mapping.path_cache.invalidations",
               cache_stats_.invalidations);
}

}  // namespace unify::mapping
