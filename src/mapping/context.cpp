#include "mapping/context.h"

#include <algorithm>
#include <set>

#include "graph/algorithms.h"
#include "util/log.h"

namespace unify::mapping {

Context::Context(const sg::ServiceGraph& sg, const SubstrateView& substrate,
                 const catalog::NfCatalog& catalog)
    : sg_(&sg), catalog_(&catalog), base_(&substrate.nffg()) {
  if (substrate.index() != nullptr) {
    index_ = substrate.index();
  } else {
    owned_index_.emplace(*base_);
    index_ = &*owned_index_;
  }
}

Result<model::Resources> Context::footprint(const sg::SgNf& nf) const {
  const auto key =
      std::make_tuple(nf.type, nf.requirement_override.cpu,
                      nf.requirement_override.mem,
                      nf.requirement_override.storage);
  const auto it = footprint_cache_.find(key);
  if (it != footprint_cache_.end()) return it->second;
  auto resolved = catalog_->footprint(nf.type, nf.requirement_override);
  if (resolved.ok()) footprint_cache_.emplace(key, *resolved);
  return resolved;
}

model::Resources Context::residual(const std::string& host) const {
  const model::BisBis* bb = base_->find_bisbis(host);
  if (bb == nullptr) return {};
  model::Resources left = bb->residual();
  const auto extra = extra_alloc_.find(host);
  if (extra != extra_alloc_.end()) left -= extra->second;
  return left;
}

double Context::utilization(const std::string& host) const {
  const model::BisBis* bb = base_->find_bisbis(host);
  if (bb == nullptr) return 0;
  model::Resources alloc = bb->allocated();
  const auto extra = extra_alloc_.find(host);
  if (extra != extra_alloc_.end()) alloc += extra->second;
  const model::Resources& cap = bb->capacity;
  double worst = 0;
  if (cap.cpu > 0) worst = std::max(worst, alloc.cpu / cap.cpu);
  if (cap.mem > 0) worst = std::max(worst, alloc.mem / cap.mem);
  if (cap.storage > 0) worst = std::max(worst, alloc.storage / cap.storage);
  return worst;
}

double Context::extra_reserved(graph::EdgeId edge) const noexcept {
  if (extra_reserved_.empty()) return 0;  // pristine-context fast path
  const auto it = std::lower_bound(
      extra_reserved_.begin(), extra_reserved_.end(), edge,
      [](const auto& entry, graph::EdgeId e) { return entry.first < e; });
  return it != extra_reserved_.end() && it->first == edge ? it->second : 0;
}

void Context::add_extra_reserved(graph::EdgeId edge, double amount) {
  const auto it = std::lower_bound(
      extra_reserved_.begin(), extra_reserved_.end(), edge,
      [](const auto& entry, graph::EdgeId e) { return entry.first < e; });
  if (it != extra_reserved_.end() && it->first == edge) {
    it->second += amount;
    // Keep the vector minimal so the empty() fast path re-arms after a
    // full release.
    if (it->second == 0) extra_reserved_.erase(it);
    return;
  }
  if (amount != 0) extra_reserved_.emplace(it, edge, amount);
}

double Context::residual_bandwidth(graph::EdgeId edge) const noexcept {
  return index_->graph().edge(edge).data.link->residual_bandwidth() -
         extra_reserved(edge);
}

std::vector<std::string> Context::candidates(const sg::SgNf& nf) const {
  std::vector<std::string> hosts;
  const auto need = footprint(nf);
  if (!need.ok()) return hosts;
  for (const auto& [id, bb] : base_->bisbis()) {
    if (bb.supports_nf_type(nf.type) && residual(id).fits(*need) &&
        constraint_allows(nf.id, id).ok()) {
      hosts.push_back(id);
    }
  }
  return hosts;  // std::map iteration is already id-ascending
}

Result<void> Context::constraint_allows(const std::string& nf_id,
                                        const std::string& host) const {
  for (const sg::PlacementConstraint& c : sg_->constraints()) {
    switch (c.kind) {
      case sg::ConstraintKind::kPin:
        if (c.nf_a == nf_id && c.host != host) {
          return Error{ErrorCode::kRejected,
                       nf_id + " is pinned to " + c.host};
        }
        break;
      case sg::ConstraintKind::kForbid:
        if (c.nf_a == nf_id && c.host == host) {
          return Error{ErrorCode::kRejected,
                       nf_id + " is forbidden on " + host};
        }
        break;
      case sg::ConstraintKind::kAntiAffinity: {
        const std::string& peer =
            c.nf_a == nf_id ? c.nf_b : (c.nf_b == nf_id ? c.nf_a : "");
        if (peer.empty()) break;
        const auto placed = placements_.find(peer);
        if (placed != placements_.end() && placed->second == host) {
          return Error{ErrorCode::kRejected,
                       nf_id + " anti-affine with " + peer + " on " + host};
        }
        break;
      }
    }
  }
  return Result<void>::success();
}

Result<void> Context::place(const std::string& nf_id,
                            const std::string& host) {
  const sg::SgNf* nf = sg_->find_nf(nf_id);
  if (nf == nullptr) {
    return Error{ErrorCode::kNotFound, "SG NF " + nf_id};
  }
  if (placements_.count(nf_id) != 0) {
    return Error{ErrorCode::kAlreadyExists, "NF " + nf_id + " already placed"};
  }
  UNIFY_RETURN_IF_ERROR(constraint_allows(nf_id, host));
  UNIFY_ASSIGN_OR_RETURN(const model::Resources need, footprint(*nf));
  // Same acceptance rules Nffg::place_nf enforces, evaluated against base
  // + overlay instead of a mutable substrate copy.
  const model::BisBis* bb = base_->find_bisbis(host);
  if (bb == nullptr) {
    return Error{ErrorCode::kNotFound, "BiS-BiS " + host};
  }
  if (bb->nfs.count(nf_id) != 0) {
    return Error{ErrorCode::kAlreadyExists, "NF " + nf_id + " on " + host};
  }
  if (!bb->supports_nf_type(nf->type)) {
    return Error{ErrorCode::kRejected,
                 "BiS-BiS " + host + " does not support NF type " + nf->type};
  }
  const model::Resources left = residual(host);
  if (!left.fits(need)) {
    return Error{ErrorCode::kResourceExhausted,
                 "BiS-BiS " + host + " residual " + left.to_string() +
                     " < requirement " + need.to_string()};
  }
  extra_alloc_[host] += need;
  placements_.emplace(nf_id, host);
  return Result<void>::success();
}

void Context::unplace(const std::string& nf_id) {
  const auto it = placements_.find(nf_id);
  if (it == placements_.end()) return;
  const sg::SgNf* nf = sg_->find_nf(nf_id);
  if (nf != nullptr) {
    if (const auto need = footprint(*nf); need.ok()) {
      const auto alloc = extra_alloc_.find(it->second);
      if (alloc != extra_alloc_.end()) {
        alloc->second -= *need;
        if (alloc->second.is_zero()) extra_alloc_.erase(alloc);
      }
    }
  }
  placements_.erase(it);
}

Result<std::string> Context::node_of(const std::string& sg_node) const {
  if (sg_->has_sap(sg_node)) {
    if (base_->find_sap(sg_node) == nullptr) {
      return Error{ErrorCode::kNotFound,
                   "SAP " + sg_node + " not present in substrate"};
    }
    return sg_node;
  }
  const auto it = placements_.find(sg_node);
  if (it == placements_.end()) {
    return Error{ErrorCode::kUnavailable, "NF " + sg_node + " not yet placed"};
  }
  return it->second;
}

void Context::OverlayScan::note_masked(graph::EdgeId e) const {
  if (*overflow) return;
  if (std::find(record->begin(), record->end(), e) != record->end()) return;
  if (record->size() >= kMaskedEdgeCap) {
    *overflow = true;
    record->clear();
    record->shrink_to_fit();
    return;
  }
  record->push_back(e);
}

const Context::PathEntry& Context::cached_path(graph::NodeId from,
                                               graph::NodeId to,
                                               double min_bw) const {
  const PathKey key{from, to, min_bw};
  const auto it = path_cache_.find(key);
  if (it != path_cache_.end()) {
    ++cache_stats_.hits;
    return it->second;
  }
  ++cache_stats_.misses;
  PathEntry entry;
  // Record every bandwidth-masked edge the Dijkstra scans: any edge whose
  // release could improve this entry has a settled (hence scanned) tail,
  // so the set is complete for per-entry unroute invalidation.
  auto path = graph::shortest_path(
      workspace_, index_->graph().node_capacity(), from, to,
      OverlayScan{this, min_bw, &entry.masked, &entry.masked_overflow});
  if (path.has_value()) {
    entry.reachable = true;
    entry.delay = model::path_delay(*index_, *path);
    entry.path = std::move(*path);
  }
  return path_cache_.emplace(key, std::move(entry)).first->second;
}

void Context::apply_reservation_to_cache(
    const std::vector<graph::EdgeId>& edges) {
  for (auto it = path_cache_.begin(); it != path_cache_.end();) {
    PathEntry& entry = it->second;
    const auto& cached = entry.path.edges;
    const bool crosses =
        entry.reachable &&
        std::any_of(cached.begin(), cached.end(), [&](graph::EdgeId e) {
          return std::binary_search(edges.begin(), edges.end(), e);
        });
    if (crosses) {
      ++cache_stats_.invalidations;
      it = path_cache_.erase(it);
      continue;
    }
    // Survivors stay optimal (reservations only mask edges), but must
    // learn which of the touched edges are now masked for their floor so
    // a later release re-examines them.
    if (!entry.masked_overflow) {
      const double floor = std::get<2>(it->first);
      for (const graph::EdgeId e : edges) {
        if (residual_bandwidth(e) < floor) {
          if (std::find(entry.masked.begin(), entry.masked.end(), e) ==
              entry.masked.end()) {
            if (entry.masked.size() >= kMaskedEdgeCap) {
              entry.masked_overflow = true;
              entry.masked.clear();
              entry.masked.shrink_to_fit();
              break;
            }
            entry.masked.push_back(e);
          }
        }
      }
    }
    ++it;
  }
}

void Context::invalidate_paths_unmasked_by(graph::EdgeId edge,
                                           double pre_residual) {
  for (auto it = path_cache_.begin(); it != path_cache_.end();) {
    const PathEntry& entry = it->second;
    const double floor = std::get<2>(it->first);
    // The release unmasks `edge` only for floors above its pre-release
    // residual, and only entries that saw it masked can improve.
    const bool stale =
        floor > pre_residual &&
        (entry.masked_overflow ||
         std::find(entry.masked.begin(), entry.masked.end(), edge) !=
             entry.masked.end());
    if (stale) {
      ++cache_stats_.invalidations;
      it = path_cache_.erase(it);
    } else {
      ++it;
    }
  }
}

Result<PathInfo> Context::route(const sg::SgLink& link) {
  if (paths_.count(link.id) != 0) {
    return Error{ErrorCode::kAlreadyExists, "SG link " + link.id};
  }
  UNIFY_ASSIGN_OR_RETURN(const std::string from, node_of(link.from.node));
  UNIFY_ASSIGN_OR_RETURN(const std::string to, node_of(link.to.node));
  PathInfo info;
  std::vector<graph::EdgeId> edges;
  if (from != to) {
    const auto from_id = index_->node_of(from);
    const auto to_id = index_->node_of(to);
    const PathEntry& entry = cached_path(from_id, to_id, link.bandwidth);
    if (!entry.reachable) {
      return Error{ErrorCode::kInfeasible,
                   "no path " + from + " -> " + to + " with " +
                       strings::format_double(link.bandwidth) + " Mbit/s"};
    }
    info.delay = entry.delay;
    // Snapshot before invalidation below evicts the entry we read from.
    edges = entry.path.edges;
    for (const graph::EdgeId e : edges) {
      info.links.push_back(index_->graph().edge(e).data.link_id);
      add_extra_reserved(e, link.bandwidth);
    }
    if (link.bandwidth > 0 && !edges.empty()) {
      // Reservations only shrink residuals: cached paths not crossing the
      // touched links stay optimal; those crossing them may now be masked.
      std::vector<graph::EdgeId> sorted = edges;
      std::sort(sorted.begin(), sorted.end());
      apply_reservation_to_cache(sorted);
    }
  }
  routed_edges_.emplace(link.id, std::move(edges));
  paths_.emplace(link.id, info);
  return info;
}

void Context::unroute(const std::string& sg_link_id) {
  const auto it = paths_.find(sg_link_id);
  if (it == paths_.end()) return;
  const sg::SgLink* link = sg_->find_link(sg_link_id);
  if (link == nullptr) {
    UNIFY_LOG(kWarn, "mapping.ctx")
        << "unroute: SG link " << sg_link_id
        << " not in service graph; dropping path without releasing bandwidth";
  } else if (link->bandwidth > 0) {
    const auto routed = routed_edges_.find(sg_link_id);
    if (routed != routed_edges_.end()) {
      for (const graph::EdgeId e : routed->second) {
        // A release on an edge only unmasks it for floors above its
        // pre-release residual; evict exactly the entries that saw this
        // edge masked (everyone else's masked graph is unchanged).
        const double pre_residual = residual_bandwidth(e);
        add_extra_reserved(e, -link->bandwidth);
        invalidate_paths_unmasked_by(e, pre_residual);
      }
    }
  }
  routed_edges_.erase(sg_link_id);
  paths_.erase(it);
}

Result<void> Context::route_all() {
  for (const sg::SgLink& link : sg_->links()) {
    if (is_routed(link.id)) continue;
    UNIFY_RETURN_IF_ERROR(route(link));
  }
  return Result<void>::success();
}

double Context::chain_delay(const sg::E2eRequirement& req) const {
  const auto chain = sg_->chain_for(req);
  if (!chain.ok()) return graph::kInf;
  double total = 0;
  for (const sg::SgLink* link : *chain) {
    const auto it = paths_.find(link->id);
    if (it != paths_.end()) total += it->second.delay;
  }
  return total;
}

Result<void> Context::check_requirements() const {
  for (const sg::E2eRequirement& req : sg_->requirements()) {
    const double delay = chain_delay(req);
    if (delay > req.max_delay) {
      return Error{ErrorCode::kInfeasible,
                   "requirement " + req.id + ": delay " +
                       strings::format_double(delay) + " ms exceeds " +
                       strings::format_double(req.max_delay) + " ms"};
    }
  }
  return Result<void>::success();
}

double Context::distance(const std::string& from, const std::string& to,
                         double min_bw) const {
  if (from == to) return 0;
  const auto from_id = index_->node_of(from);
  const auto to_id = index_->node_of(to);
  if (from_id == graph::kInvalidId || to_id == graph::kInvalidId) {
    return graph::kInf;
  }
  const PathEntry& entry = cached_path(from_id, to_id, min_bw);
  return entry.reachable ? entry.path.cost : graph::kInf;
}

double Context::delay_between(const std::string& from, const std::string& to,
                              double min_bw) const {
  if (from == to) return 0;
  const auto from_id = index_->node_of(from);
  const auto to_id = index_->node_of(to);
  if (from_id == graph::kInvalidId || to_id == graph::kInvalidId) {
    return graph::kInf;
  }
  const PathEntry& entry = cached_path(from_id, to_id, min_bw);
  return entry.reachable ? entry.delay : graph::kInf;
}

double Context::node_penalty(const std::string& host) const noexcept {
  const model::BisBis* bb = base_->find_bisbis(host);
  return bb == nullptr ? 0.0 : bb->health_penalty;
}

Mapping Context::finish(std::string mapper_name) const {
  Mapping m;
  m.mapper_name = std::move(mapper_name);
  m.nf_host = placements_;
  m.link_paths = paths_;
  for (const sg::E2eRequirement& req : sg_->requirements()) {
    m.requirement_delay.emplace(req.id, chain_delay(req));
  }
  std::set<std::string> hosts;
  for (const auto& [nf, host] : placements_) hosts.insert(host);
  m.stats.nodes_used = hosts.size();
  m.stats.nfs_placed = placements_.size();
  for (const auto& [sg_link_id, info] : paths_) {
    m.stats.total_hops += info.links.size();
    const sg::SgLink* link = sg_->find_link(sg_link_id);
    m.stats.bandwidth_hops +=
        link->bandwidth * static_cast<double>(info.links.size());
  }
  return m;
}

void Context::publish_cache_metrics(telemetry::Registry& registry) const {
  registry.add("mapping.path_cache.hits", cache_stats_.hits);
  registry.add("mapping.path_cache.misses", cache_stats_.misses);
  registry.add("mapping.path_cache.invalidations",
               cache_stats_.invalidations);
}

}  // namespace unify::mapping
