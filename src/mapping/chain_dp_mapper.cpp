#include "mapping/chain_dp_mapper.h"

#include <algorithm>
#include <limits>
#include <set>

#include "mapping/context.h"

namespace unify::mapping {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct ChainStage {
  std::string nf_id;
  double in_bandwidth = 0;  ///< bandwidth of the link entering this NF
};

/// One DP sweep. `banned` pairs are excluded from candidates. On success
/// fills `choice` (nf -> host) for *unplaced* NFs of the chain.
Result<void> run_dp(Context& ctx, const sg::E2eRequirement& req,
                    const std::vector<const sg::SgLink*>& chain,
                    const std::set<std::pair<std::string, std::string>>& banned,
                    std::map<std::string, std::string>& choice) {
  // Build stages: NFs along the chain with the bandwidth of their inbound
  // link; the final link's bandwidth constrains the hop to to_sap.
  std::vector<ChainStage> stages;
  for (const sg::SgLink* link : chain) {
    if (!ctx.sg().has_sap(link->to.node)) {
      stages.push_back(ChainStage{link->to.node, link->bandwidth});
    }
  }
  const double out_bandwidth = chain.empty() ? 0 : chain.back()->bandwidth;

  if (stages.empty()) return Result<void>::success();  // SAP-to-SAP chain

  // Candidate hosts per stage. Already-placed NFs are pinned.
  std::vector<std::vector<std::string>> cands(stages.size());
  for (std::size_t i = 0; i < stages.size(); ++i) {
    const std::string& nf_id = stages[i].nf_id;
    if (const auto node = ctx.node_of(nf_id); node.ok()) {
      cands[i] = {*node};
      continue;
    }
    for (const std::string& host :
         ctx.candidates(*ctx.sg().find_nf(nf_id))) {
      if (banned.count({nf_id, host}) == 0) cands[i].push_back(host);
    }
    if (cands[i].empty()) {
      return Error{ErrorCode::kInfeasible,
                   "no feasible host for NF " + nf_id};
    }
  }

  // Viterbi. `cost` is the selection objective (health-biased distance()
  // plus per-host penalty, so flaky domains drain before their circuit
  // trips); `delay` tracks the true wire delay of the same min-cost paths
  // (delay_between()), so the max_delay bound is checked on what the wire
  // would actually see, not on the biased weight.
  std::vector<std::vector<double>> cost(stages.size());
  std::vector<std::vector<double>> delay(stages.size());
  std::vector<std::vector<int>> back(stages.size());
  for (std::size_t i = 0; i < stages.size(); ++i) {
    cost[i].assign(cands[i].size(), kInf);
    delay[i].assign(cands[i].size(), kInf);
    back[i].assign(cands[i].size(), -1);
  }
  for (std::size_t j = 0; j < cands[0].size(); ++j) {
    const double d =
        ctx.distance(req.from_sap, cands[0][j], stages[0].in_bandwidth);
    if (d == kInf) continue;
    cost[0][j] = d + ctx.node_penalty(cands[0][j]);
    delay[0][j] =
        ctx.delay_between(req.from_sap, cands[0][j], stages[0].in_bandwidth);
  }
  for (std::size_t i = 1; i < stages.size(); ++i) {
    for (std::size_t j = 0; j < cands[i].size(); ++j) {
      const double penalty = ctx.node_penalty(cands[i][j]);
      for (std::size_t p = 0; p < cands[i - 1].size(); ++p) {
        if (cost[i - 1][p] == kInf) continue;
        const double step = ctx.distance(cands[i - 1][p], cands[i][j],
                                         stages[i].in_bandwidth);
        const double total = cost[i - 1][p] + step + penalty;
        if (total < cost[i][j]) {
          cost[i][j] = total;
          delay[i][j] = delay[i - 1][p] +
                        ctx.delay_between(cands[i - 1][p], cands[i][j],
                                          stages[i].in_bandwidth);
          back[i][j] = static_cast<int>(p);
        }
      }
    }
  }
  // Close the chain towards to_sap.
  const std::size_t tail = stages.size() - 1;
  double best = kInf;
  double best_delay = kInf;
  int best_j = -1;
  for (std::size_t j = 0; j < cands[tail].size(); ++j) {
    if (cost[tail][j] == kInf) continue;
    const double hop =
        ctx.distance(cands[tail][j], req.to_sap, out_bandwidth);
    const double total = cost[tail][j] + hop;
    if (total < best) {
      best = total;
      best_delay = delay[tail][j] +
                   ctx.delay_between(cands[tail][j], req.to_sap, out_bandwidth);
      best_j = static_cast<int>(j);
    }
  }
  if (best_j < 0) {
    return Error{ErrorCode::kInfeasible,
                 "chain for requirement " + req.id + " is disconnected"};
  }
  if (best_delay > req.max_delay) {
    return Error{ErrorCode::kInfeasible,
                 "requirement " + req.id + ": optimal chain delay " +
                     strings::format_double(best_delay) + " ms exceeds " +
                     strings::format_double(req.max_delay) + " ms"};
  }
  // Trace back.
  int j = best_j;
  for (std::size_t i = stages.size(); i-- > 0;) {
    choice[stages[i].nf_id] = cands[i][static_cast<std::size_t>(j)];
    j = back[i][static_cast<std::size_t>(j)];
  }
  return Result<void>::success();
}

}  // namespace

Result<Mapping> ChainDpMapper::map(const sg::ServiceGraph& sg,
                                   const SubstrateView& substrate,
                                   const catalog::NfCatalog& catalog) const {
  Context ctx(sg, substrate, catalog);

  for (const sg::E2eRequirement& req : sg.requirements()) {
    const auto chain = sg.chain_for(req);
    if (!chain.ok()) continue;

    std::set<std::pair<std::string, std::string>> banned;
    // Re-run the DP when a chosen placement fails (capacity already eaten
    // by a previous chain).
    for (int attempt = 0;; ++attempt) {
      if (attempt > 64) {
        return Error{ErrorCode::kInfeasible,
                     "placement retries exhausted for requirement " + req.id};
      }
      std::map<std::string, std::string> choice;
      UNIFY_RETURN_IF_ERROR(run_dp(ctx, req, *chain, banned, choice));
      bool all_placed = true;
      std::vector<std::string> placed_now;
      for (const auto& [nf_id, host] : choice) {
        if (ctx.node_of(nf_id).ok()) continue;  // pinned earlier
        const auto res = ctx.place(nf_id, host);
        if (!res.ok()) {
          banned.insert({nf_id, host});
          for (const std::string& undo : placed_now) ctx.unplace(undo);
          all_placed = false;
          break;
        }
        placed_now.push_back(nf_id);
      }
      if (all_placed) break;
    }
  }

  // NFs outside every requirement chain: cheapest feasible host (lowest
  // health penalty, id as the tie-break — candidates() is id-ascending).
  for (const auto& [nf_id, nf] : sg.nfs()) {
    if (ctx.node_of(nf_id).ok()) continue;
    const auto cands = ctx.candidates(nf);
    if (cands.empty()) {
      return Error{ErrorCode::kInfeasible, "no feasible host for " + nf_id};
    }
    const auto pick = std::min_element(
        cands.begin(), cands.end(),
        [&](const std::string& a, const std::string& b) {
          return ctx.node_penalty(a) < ctx.node_penalty(b);
        });
    UNIFY_RETURN_IF_ERROR(ctx.place(nf_id, *pick));
  }

  UNIFY_RETURN_IF_ERROR(ctx.route_all());
  UNIFY_RETURN_IF_ERROR(ctx.check_requirements());
  return ctx.finish(name());
}

}  // namespace unify::mapping
