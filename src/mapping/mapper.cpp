#include "mapping/mapper.h"

#include <algorithm>
#include <chrono>
#include <set>

#include "model/topology_index.h"

namespace unify::mapping {

namespace {

/// Port of BiS-BiS `node` on substrate link `link`.
Result<int> port_on(const model::Link& link, const std::string& node) {
  if (link.from.node == node) return link.from.port;
  if (link.to.node == node) return link.to.port;
  return Error{ErrorCode::kInternal,
               "link " + link.id + " does not touch " + node};
}

/// The node a path step leads to, given where we came from.
Result<std::string> other_end(const model::Link& link,
                              const std::string& from) {
  if (link.from.node == from) return link.to.node;
  if (link.to.node == from) return link.from.node;
  return Error{ErrorCode::kInvalidArgument,
               "path link " + link.id + " discontinuous at " + from};
}

struct ResolvedEndpoints {
  std::string from_node;  ///< substrate node of link.from (SAP or host)
  std::string to_node;
  bool from_is_nf = false;
  bool to_is_nf = false;
};

Result<ResolvedEndpoints> resolve_endpoints(const sg::ServiceGraph& sg,
                                            const Mapping& mapping,
                                            const sg::SgLink& link) {
  ResolvedEndpoints out;
  const auto resolve = [&](const model::PortRef& ref, std::string& node,
                           bool& is_nf) -> Result<void> {
    if (sg.has_sap(ref.node)) {
      node = ref.node;
      is_nf = false;
      return Result<void>::success();
    }
    const auto it = mapping.nf_host.find(ref.node);
    if (it == mapping.nf_host.end()) {
      return Error{ErrorCode::kInvalidArgument,
                   "SG link " + link.id + " endpoint NF " + ref.node +
                       " has no placement"};
    }
    node = it->second;
    is_nf = true;
    return Result<void>::success();
  };
  UNIFY_RETURN_IF_ERROR(resolve(link.from, out.from_node, out.from_is_nf));
  UNIFY_RETURN_IF_ERROR(resolve(link.to, out.to_node, out.to_is_nf));
  return out;
}

/// Walks the recorded path and returns the node sequence (from -> to),
/// validating continuity against `nffg`.
Result<std::vector<std::string>> path_nodes(const model::Nffg& nffg,
                                            const PathInfo& path,
                                            const std::string& from,
                                            const std::string& to) {
  std::vector<std::string> nodes{from};
  std::string cur = from;
  for (const std::string& link_id : path.links) {
    const model::Link* link = nffg.find_link(link_id);
    if (link == nullptr) {
      return Error{ErrorCode::kNotFound, "substrate link " + link_id};
    }
    UNIFY_ASSIGN_OR_RETURN(cur, other_end(*link, cur));
    nodes.push_back(cur);
  }
  if (cur != to) {
    return Error{ErrorCode::kInvalidArgument,
                 "path ends at " + cur + ", expected " + to};
  }
  return nodes;
}

}  // namespace

Result<void> verify_mapping(const sg::ServiceGraph& sg,
                            const model::Nffg& substrate,
                            const catalog::NfCatalog& catalog,
                            const Mapping& mapping) {
  // 1. Every SG NF placed exactly once, on an existing node, type-supported;
  //    cumulative footprints fit residual capacity.
  std::map<std::string, model::Resources> extra;
  for (const auto& [nf_id, nf] : sg.nfs()) {
    const auto it = mapping.nf_host.find(nf_id);
    if (it == mapping.nf_host.end()) {
      return Error{ErrorCode::kInvalidArgument, "NF " + nf_id + " unplaced"};
    }
    const model::BisBis* bb = substrate.find_bisbis(it->second);
    if (bb == nullptr) {
      return Error{ErrorCode::kNotFound, "host " + it->second};
    }
    if (!bb->supports_nf_type(nf.type)) {
      return Error{ErrorCode::kRejected,
                   "host " + it->second + " does not support " + nf.type};
    }
    UNIFY_ASSIGN_OR_RETURN(
        const model::Resources need,
        catalog.footprint(nf.type, nf.requirement_override));
    extra[it->second] += need;
  }
  for (const auto& [host, need] : extra) {
    if (!substrate.find_bisbis(host)->residual().fits(need)) {
      return Error{ErrorCode::kResourceExhausted,
                   "host " + host + " cannot fit mapped NFs"};
    }
  }

  // 1b. Placement constraints.
  for (const sg::PlacementConstraint& c : sg.constraints()) {
    const auto host_of = [&](const std::string& nf) -> const std::string* {
      const auto it = mapping.nf_host.find(nf);
      return it == mapping.nf_host.end() ? nullptr : &it->second;
    };
    switch (c.kind) {
      case sg::ConstraintKind::kPin:
        if (const std::string* host = host_of(c.nf_a);
            host != nullptr && *host != c.host) {
          return Error{ErrorCode::kRejected,
                       c.nf_a + " pinned to " + c.host + " but placed on " +
                           *host};
        }
        break;
      case sg::ConstraintKind::kForbid:
        if (const std::string* host = host_of(c.nf_a);
            host != nullptr && *host == c.host) {
          return Error{ErrorCode::kRejected,
                       c.nf_a + " placed on forbidden host " + c.host};
        }
        break;
      case sg::ConstraintKind::kAntiAffinity: {
        const std::string* a = host_of(c.nf_a);
        const std::string* b = host_of(c.nf_b);
        if (a != nullptr && b != nullptr && *a == *b) {
          return Error{ErrorCode::kRejected,
                       c.nf_a + " and " + c.nf_b +
                           " are anti-affine but share host " + *a};
        }
        break;
      }
    }
  }

  // 2. Paths: continuity, endpoints, cumulative bandwidth, delay bookkeeping.
  std::map<std::string, double> reserved_extra;
  for (const sg::SgLink& link : sg.links()) {
    const auto path_it = mapping.link_paths.find(link.id);
    if (path_it == mapping.link_paths.end()) {
      return Error{ErrorCode::kInvalidArgument,
                   "SG link " + link.id + " unrouted"};
    }
    UNIFY_ASSIGN_OR_RETURN(const ResolvedEndpoints ep,
                           resolve_endpoints(sg, mapping, link));
    if (ep.from_node == ep.to_node && !path_it->second.links.empty()) {
      return Error{ErrorCode::kInvalidArgument,
                   "SG link " + link.id + " colocated but has a path"};
    }
    if (ep.from_node != ep.to_node && path_it->second.links.empty()) {
      return Error{ErrorCode::kInvalidArgument,
                   "SG link " + link.id + " spans nodes but has no path"};
    }
    UNIFY_RETURN_IF_ERROR(path_nodes(substrate, path_it->second, ep.from_node,
                                     ep.to_node));
    for (const std::string& substrate_link : path_it->second.links) {
      reserved_extra[substrate_link] += link.bandwidth;
    }
  }
  for (const auto& [link_id, extra_bw] : reserved_extra) {
    const model::Link* link = substrate.find_link(link_id);
    if (link->residual_bandwidth() + 1e-9 < extra_bw) {
      return Error{ErrorCode::kResourceExhausted,
                   "substrate link " + link_id + " overcommitted by mapping"};
    }
  }

  // 3. Requirements.
  for (const sg::E2eRequirement& req : sg.requirements()) {
    UNIFY_ASSIGN_OR_RETURN(const auto chain, sg.chain_for(req));
    double delay = 0;
    for (const sg::SgLink* link : chain) {
      delay += mapping.link_paths.at(link->id).delay;
    }
    if (delay > req.max_delay + 1e-9) {
      return Error{ErrorCode::kInfeasible,
                   "requirement " + req.id + " delay " +
                       strings::format_double(delay) + " > " +
                       strings::format_double(req.max_delay)};
    }
  }
  return Result<void>::success();
}

Result<void> install_mapping(model::Nffg& target, const sg::ServiceGraph& sg,
                             const catalog::NfCatalog& catalog,
                             const Mapping& mapping, bool force_placement) {
  // Place NF instances.
  for (const auto& [nf_id, host] : mapping.nf_host) {
    const sg::SgNf* nf = sg.find_nf(nf_id);
    if (nf == nullptr) {
      return Error{ErrorCode::kNotFound, "SG NF " + nf_id};
    }
    UNIFY_ASSIGN_OR_RETURN(
        const model::Resources need,
        catalog.footprint(nf->type, nf->requirement_override));
    model::NfInstance instance;
    instance.id = nf_id;
    instance.type = nf->type;
    instance.requirement = need;
    for (int p = 0; p < nf->port_count; ++p) {
      instance.ports.push_back(model::Port{p, ""});
    }
    UNIFY_RETURN_IF_ERROR(
        target.place_nf(host, std::move(instance), force_placement));
  }

  // Synthesize the tag-switched flowrule chain per SG link and reserve
  // bandwidth. The tag is the SG link id.
  for (const sg::SgLink& link : sg.links()) {
    const auto path_it = mapping.link_paths.find(link.id);
    if (path_it == mapping.link_paths.end()) {
      return Error{ErrorCode::kInvalidArgument,
                   "SG link " + link.id + " unrouted"};
    }
    const PathInfo& path = path_it->second;
    // Qualify rule ids and tags by the request so concurrent services may
    // reuse SG link ids without colliding in the substrate.
    const std::string qualified = sg.id() + ":" + link.id;
    UNIFY_ASSIGN_OR_RETURN(const ResolvedEndpoints ep,
                           resolve_endpoints(sg, mapping, link));
    UNIFY_ASSIGN_OR_RETURN(
        const std::vector<std::string> nodes,
        path_nodes(target, path, ep.from_node, ep.to_node));

    for (const std::string& substrate_link : path.links) {
      target.find_link(substrate_link)->reserved += link.bandwidth;
    }

    // Which path indices host flowrules? BiS-BiS nodes only (SAP endpoints
    // are passive).
    const std::size_t last = nodes.size() - 1;
    std::size_t first_bb = ep.from_is_nf ? 0 : 1;
    std::size_t last_bb = ep.to_is_nf ? last : last - 1;
    if (!ep.from_is_nf && !ep.to_is_nf && nodes.size() == 1) {
      return Error{ErrorCode::kInvalidArgument,
                   "SG link " + link.id + " connects a SAP to itself"};
    }
    const bool multi_node = first_bb < last_bb;
    for (std::size_t i = first_bb; i <= last_bb; ++i) {
      const std::string& node = nodes[i];
      model::Flowrule rule;
      rule.id = qualified + "@" + node;
      rule.bandwidth = link.bandwidth;
      // Ingress side.
      if (i == 0 && ep.from_is_nf) {
        rule.in = model::PortRef{link.from.node, link.from.port};
      } else {
        const model::Link* arriving = target.find_link(path.links[i - 1]);
        UNIFY_ASSIGN_OR_RETURN(const int port, port_on(*arriving, node));
        rule.in = model::PortRef{node, port};
      }
      // Egress side.
      if (i == last && ep.to_is_nf) {
        rule.out = model::PortRef{link.to.node, link.to.port};
      } else {
        const model::Link* departing = target.find_link(path.links[i]);
        UNIFY_ASSIGN_OR_RETURN(const int port, port_on(*departing, node));
        rule.out = model::PortRef{node, port};
      }
      // Tagging: set at the first BiS-BiS, match afterwards, strip at the
      // last; single-node realizations need no tag at all.
      if (multi_node) {
        if (i == first_bb) {
          rule.set_tag = qualified;
        } else {
          rule.match_tag = qualified;
          if (i == last_bb) rule.set_tag = "-";
        }
      }
      UNIFY_RETURN_IF_ERROR(target.add_flowrule(node, std::move(rule)));
    }
  }
  return Result<void>::success();
}

Result<void> uninstall_mapping(model::Nffg& target,
                               const sg::ServiceGraph& sg,
                               const Mapping& mapping) {
  // Remove flowrules first (removing NFs would drop NF-attached rules but
  // not transit rules on intermediate nodes).
  for (const auto& [sg_link_id, path] : mapping.link_paths) {
    const sg::SgLink* link = sg.find_link(sg_link_id);
    if (link == nullptr) {
      return Error{ErrorCode::kNotFound, "SG link " + sg_link_id};
    }
    for (const auto& [bb_id, bb] : target.bisbis()) {
      // Collect ids first: remove_flowrule mutates the vector.
      std::vector<std::string> doomed;
      for (const model::Flowrule& fr : bb.flowrules) {
        if (fr.id == sg.id() + ":" + sg_link_id + "@" + bb_id) {
          doomed.push_back(fr.id);
        }
      }
      for (const std::string& id : doomed) {
        UNIFY_RETURN_IF_ERROR(target.remove_flowrule(bb_id, id));
      }
    }
    for (const std::string& substrate_link : path.links) {
      model::Link* l = target.find_link(substrate_link);
      if (l == nullptr) {
        return Error{ErrorCode::kNotFound, "substrate link " + substrate_link};
      }
      l->reserved -= link->bandwidth;
    }
  }
  for (const auto& [nf_id, host] : mapping.nf_host) {
    UNIFY_RETURN_IF_ERROR(target.remove_nf(host, nf_id));
  }
  return Result<void>::success();
}

EmbeddingScore score_mapping(const Mapping& mapping,
                             const model::Nffg& substrate) {
  EmbeddingScore score;
  score.cost = mapping.stats.bandwidth_hops;
  for (const auto& [req, delay] : mapping.requirement_delay) {
    score.delay += delay;
  }
  for (const auto& [nf, host] : mapping.nf_host) {
    if (const model::BisBis* bb = substrate.find_bisbis(host)) {
      score.penalty += bb->health_penalty;
    }
  }
  return score;
}

namespace {

/// Innermost armed deadline of this thread as a steady_clock microsecond
/// count; 0 = none armed.
thread_local std::int64_t g_map_deadline_us = 0;

std::int64_t steady_now_us() noexcept {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ScopedMapDeadline::ScopedMapDeadline(std::int64_t budget_us)
    : previous_(g_map_deadline_us) {
  if (budget_us > 0) g_map_deadline_us = steady_now_us() + budget_us;
}

ScopedMapDeadline::~ScopedMapDeadline() { g_map_deadline_us = previous_; }

bool ScopedMapDeadline::expired() noexcept {
  return g_map_deadline_us != 0 && steady_now_us() > g_map_deadline_us;
}

}  // namespace unify::mapping
