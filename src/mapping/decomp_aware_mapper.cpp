#include "mapping/decomp_aware_mapper.h"

#include <algorithm>

#include "catalog/decomposition.h"

namespace unify::mapping {

namespace {

/// Orders candidate results: feasibility first, then substrate load, then
/// total delay.
double load_of(const Mapping& m) { return m.stats.bandwidth_hops; }

double delay_of(const Mapping& m) {
  double total = 0;
  for (const auto& [req, delay] : m.requirement_delay) total += delay;
  return total;
}

}  // namespace

Result<DecompResult> DecompAwareMapper::map_with_decomposition(
    const sg::ServiceGraph& sg, const SubstrateView& substrate,
    const catalog::NfCatalog& catalog) const {
  // Top-level decomposable NFs and their rule counts.
  std::vector<std::pair<std::string, std::size_t>> dimensions;
  for (const auto& [nf_id, nf] : sg.nfs()) {
    const std::size_t n = catalog.decompositions_of(nf.type).size();
    if (n > 0) dimensions.emplace_back(nf_id, n);
  }

  // Enumerate choice vectors (mixed-radix counter), capped.
  std::size_t total = 1;
  for (const auto& [nf, n] : dimensions) {
    total *= n;
    if (total > max_combinations_) {
      total = max_combinations_;
      break;
    }
  }

  std::optional<DecompResult> best;
  std::size_t feasible = 0;
  Error last{ErrorCode::kInfeasible, "no decomposition combination tried"};
  std::vector<std::size_t> digits(dimensions.size(), 0);
  for (std::size_t combo = 0; combo < total; ++combo) {
    // digits -> per-NF rule choice for this combination.
    std::map<std::string, std::size_t> pick;
    for (std::size_t d = 0; d < dimensions.size(); ++d) {
      pick[dimensions[d].first] = digits[d];
    }
    // Advance the mixed-radix counter for next round.
    for (std::size_t d = 0; d < dimensions.size(); ++d) {
      if (++digits[d] < dimensions[d].second) break;
      digits[d] = 0;
    }

    sg::ServiceGraph expanded = sg;
    const auto chooser =
        [&pick, &catalog](const sg::SgNf& nf,
                          const std::vector<catalog::Decomposition>& rules)
        -> const catalog::Decomposition* {
      const auto it = pick.find(nf.id);
      if (it != pick.end()) return &rules[it->second];
      return &rules.front();  // nested decomposables: default rule
    };
    if (const auto applied = catalog::expand_all(expanded, catalog, chooser);
        !applied.ok()) {
      last = applied.error();
      continue;
    }
    auto mapped = inner_->map(expanded, substrate, catalog);
    if (!mapped.ok()) {
      last = mapped.error();
      continue;
    }
    ++feasible;
    const bool better =
        !best.has_value() ||
        load_of(*mapped) < load_of(best->mapping) ||
        (load_of(*mapped) == load_of(best->mapping) &&
         delay_of(*mapped) < delay_of(best->mapping));
    if (better) {
      DecompResult result;
      result.expanded = std::move(expanded);
      result.mapping = std::move(*mapped);
      best = std::move(result);
    }
  }
  if (!best.has_value()) {
    return Error{last.code, "all decomposition combinations failed; last: " +
                                last.message};
  }
  best->combinations_tried = total;
  best->combinations_feasible = feasible;
  best->mapping.mapper_name = name();
  return std::move(*best);
}

Result<Mapping> DecompAwareMapper::map(const sg::ServiceGraph& sg,
                                       const SubstrateView& substrate,
                                       const catalog::NfCatalog& catalog) const {
  UNIFY_ASSIGN_OR_RETURN(DecompResult result,
                         map_with_decomposition(sg, substrate, catalog));
  return std::move(result.mapping);
}

}  // namespace unify::mapping
