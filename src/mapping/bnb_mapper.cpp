#include "mapping/bnb_mapper.h"

#include <algorithm>
#include <limits>
#include <map>
#include <optional>
#include <queue>
#include <set>
#include <vector>

#include "mapping/context.h"

namespace unify::mapping {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kEps = 1e-9;

/// Pristine-substrate distance relaxations, memoized per source node.
/// Unmasked (no bandwidth floor) and unbiased (no health penalty), so both
/// metrics under-estimate whatever route() later charges — the property
/// that makes the search bound admissible.
class Relaxation {
 public:
  explicit Relaxation(const model::TopologyIndex& index) : index_(&index) {}

  /// Min hop counts from `src` to every node (BFS; +inf unreachable).
  const std::vector<double>& hops_from(graph::NodeId src) {
    const auto cached = hops_.find(src);
    if (cached != hops_.end()) return cached->second;
    const auto& graph = index_->graph();
    std::vector<double> dist(graph.node_capacity(), kInf);
    std::queue<graph::NodeId> frontier;
    dist[src] = 0;
    frontier.push(src);
    while (!frontier.empty()) {
      const graph::NodeId at = frontier.front();
      frontier.pop();
      for (const graph::EdgeId e : graph.out_edges(at)) {
        const graph::NodeId to = graph.edge(e).to;
        if (dist[to] != kInf) continue;
        dist[to] = dist[at] + 1;
        frontier.push(to);
      }
    }
    return hops_.emplace(src, std::move(dist)).first->second;
  }

  /// Min pure link-delay from `src` to every node (Dijkstra over
  /// LinkAttrs::delay only — internal crossing delays omitted, a further
  /// admissible weakening).
  const std::vector<double>& delay_from(graph::NodeId src) {
    const auto cached = delays_.find(src);
    if (cached != delays_.end()) return cached->second;
    const auto& graph = index_->graph();
    std::vector<double> dist(graph.node_capacity(), kInf);
    using Item = std::pair<double, graph::NodeId>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
    dist[src] = 0;
    heap.emplace(0.0, src);
    while (!heap.empty()) {
      const auto [d, at] = heap.top();
      heap.pop();
      if (d > dist[at]) continue;
      for (const graph::EdgeId e : graph.out_edges(at)) {
        const auto& edge = graph.edge(e);
        const double next = d + edge.data.link->attrs.delay;
        if (next < dist[edge.to]) {
          dist[edge.to] = next;
          heap.emplace(next, edge.to);
        }
      }
    }
    return delays_.emplace(src, std::move(dist)).first->second;
  }

 private:
  const model::TopologyIndex* index_;
  std::map<graph::NodeId, std::vector<double>> hops_;
  std::map<graph::NodeId, std::vector<double>> delays_;
};

struct NfChoice {
  std::string id;
  std::vector<std::string> hosts;       ///< pristine candidates, id order
  std::vector<graph::NodeId> host_ids;  ///< index-aligned with hosts
  double min_penalty = 0;
};

struct Search {
  Context* ctx;
  Relaxation* relax;
  const BnbOptions* options;
  std::vector<NfChoice> order;
  /// NF id -> index into `order`, for candidate-set lookups from SG links.
  std::map<std::string, std::size_t> order_of;
  /// Requirement chains resolved once (non-chain requirements are left to
  /// route_all/check_requirements at the leaves).
  std::vector<std::pair<const sg::E2eRequirement*,
                        std::vector<const sg::SgLink*>>> chains;

  std::optional<Mapping> incumbent;
  double best_total = kInf;
  std::uint64_t nodes_expanded = 0;
  bool budget_cutoff = false;
  bool deadline_cutoff = false;
};

/// The substrate node an SG endpoint resolves to under the current partial
/// placement: kInvalidId when it is an unplaced NF.
graph::NodeId resolve(const Search& search, const std::string& sg_node) {
  const auto placed = search.ctx->node_of(sg_node);
  if (!placed.ok()) return graph::kInvalidId;
  return search.ctx->index().node_of(*placed);
}

/// Optimistic distance for one SG link under metric `row_of`: exact when
/// both ends resolve, relaxed over the unplaced end's candidate set when
/// one does, zero when neither does. +inf = provably unroutable.
template <typename RowOf>
double link_relaxation(Search& search, const sg::SgLink& link, RowOf row_of) {
  const graph::NodeId from = resolve(search, link.from.node);
  const graph::NodeId to = resolve(search, link.to.node);
  if (from != graph::kInvalidId && to != graph::kInvalidId) {
    if (from == to) return 0;
    return row_of(from)[to];
  }
  if (from == graph::kInvalidId && to == graph::kInvalidId) return 0;
  const graph::NodeId anchor = from != graph::kInvalidId ? from : to;
  const std::string& loose =
      from != graph::kInvalidId ? link.to.node : link.from.node;
  const auto slot = search.order_of.find(loose);
  if (slot == search.order_of.end()) return 0;  // NF outside the search set
  const std::vector<double>& row = row_of(anchor);
  double best = kInf;
  for (const graph::NodeId candidate : search.order[slot->second].host_ids) {
    if (anchor == candidate) return 0;
    best = std::min(best, row[candidate]);
  }
  return best;
}

/// Admissible lower bound on the canonical objective of any completion of
/// the current partial placement; +inf when no completion can be feasible.
double bound(Search& search) {
  double cost_lb = 0;
  for (const sg::SgLink& link : search.ctx->sg().links()) {
    const double hops = link_relaxation(
        search, link,
        [&search](graph::NodeId src) -> const std::vector<double>& {
          return search.relax->hops_from(src);
        });
    if (hops == kInf) return kInf;
    cost_lb += link.bandwidth * hops;
  }

  double delay_lb = 0;
  for (const auto& [req, chain] : search.chains) {
    double req_delay = 0;
    for (const sg::SgLink* link : chain) {
      const double d = link_relaxation(
          search, *link,
          [&search](graph::NodeId src) -> const std::vector<double>& {
            return search.relax->delay_from(src);
          });
      if (d == kInf) return kInf;
      req_delay += d;
    }
    if (req_delay > req->max_delay + kEps) return kInf;
    delay_lb += req_delay;
  }

  double penalty_lb = 0;
  for (const NfChoice& choice : search.order) {
    const auto placed = search.ctx->placements().find(choice.id);
    penalty_lb += placed != search.ctx->placements().end()
                      ? search.ctx->node_penalty(placed->second)
                      : choice.min_penalty;
  }
  return cost_lb + search.options->delay_weight * delay_lb + penalty_lb;
}

/// Canonical leaf evaluation: everything placed, route in SG-link order,
/// score, tear the routes back down (placements stay for the unwind).
void evaluate_leaf(Search& search) {
  const bool routed = search.ctx->route_all().ok() &&
                      search.ctx->check_requirements().ok();
  if (routed) {
    Mapping mapping = search.ctx->finish("bnb");
    const double total = score_mapping(mapping, search.ctx->base())
                             .total(search.options->delay_weight);
    if (total < search.best_total - kEps) {
      search.best_total = total;
      search.incumbent = std::move(mapping);
    }
  }
  for (const sg::SgLink& link : search.ctx->sg().links()) {
    search.ctx->unroute(link.id);
  }
}

void dfs(Search& search, std::size_t depth) {
  if (search.budget_cutoff || search.deadline_cutoff) return;
  if (ScopedMapDeadline::expired()) {
    search.deadline_cutoff = true;
    return;
  }
  if (depth == search.order.size()) {
    ++search.nodes_expanded;
    evaluate_leaf(search);
    return;
  }
  const NfChoice& choice = search.order[depth];
  // Generate children with their bounds, then expand cheapest-bound first:
  // good incumbents arrive early and the bound prunes the rest.
  struct Child {
    double lb;
    std::size_t host;  ///< index into choice.hosts
  };
  std::vector<Child> children;
  for (std::size_t h = 0; h < choice.hosts.size(); ++h) {
    if (++search.nodes_expanded > search.options->max_nodes) {
      search.budget_cutoff = true;
      break;
    }
    if (!search.ctx->place(choice.id, choice.hosts[h]).ok()) continue;
    const double lb = bound(search);
    search.ctx->unplace(choice.id);
    if (lb < search.best_total - kEps) children.push_back(Child{lb, h});
  }
  std::stable_sort(children.begin(), children.end(),
                   [](const Child& a, const Child& b) {
                     return a.lb < b.lb;
                   });
  for (const Child& child : children) {
    if (search.budget_cutoff || search.deadline_cutoff) return;
    // The incumbent may have improved since this bound was computed.
    if (child.lb >= search.best_total - kEps) continue;
    if (!search.ctx->place(choice.id, choice.hosts[child.host]).ok()) {
      continue;
    }
    dfs(search, depth + 1);
    search.ctx->unplace(choice.id);
  }
}

}  // namespace

Result<BnbResult> BnbMapper::map_exact(const sg::ServiceGraph& sg,
                                       const SubstrateView& substrate,
                                       const catalog::NfCatalog& catalog) const {
  if (sg.nfs().size() > options_.max_nfs) {
    return Error{ErrorCode::kResourceExhausted,
                 "bnb refuses " + std::to_string(sg.nfs().size()) +
                     " NFs (max_nfs=" + std::to_string(options_.max_nfs) +
                     "); use a heuristic mapper"};
  }

  Context ctx(sg, substrate, catalog);
  Relaxation relax(ctx.index());
  Search search{&ctx, &relax, &options_, {}, {}, {}, {}, kInf, 0, false,
                false};

  // Chain order first (tight delay pruning), then leftovers by id — the
  // same visit order as the backtracking mapper.
  std::set<std::string> seen;
  std::vector<std::string> order_ids;
  for (const sg::E2eRequirement& req : sg.requirements()) {
    const auto seq = sg.nf_sequence_for(req);
    if (!seq.ok()) continue;
    for (const std::string& nf : *seq) {
      if (seen.insert(nf).second) order_ids.push_back(nf);
    }
  }
  for (const auto& [nf_id, nf] : sg.nfs()) {
    if (seen.insert(nf_id).second) order_ids.push_back(nf_id);
  }
  for (const std::string& nf_id : order_ids) {
    const sg::SgNf* nf = sg.find_nf(nf_id);
    NfChoice choice;
    choice.id = nf_id;
    choice.hosts = ctx.candidates(*nf);
    if (choice.hosts.empty()) {
      return Error{ErrorCode::kInfeasible,
                   "no feasible host for NF " + nf_id};
    }
    choice.min_penalty = kInf;
    for (const std::string& host : choice.hosts) {
      choice.host_ids.push_back(ctx.index().node_of(host));
      choice.min_penalty =
          std::min(choice.min_penalty, ctx.node_penalty(host));
    }
    search.order_of.emplace(nf_id, search.order.size());
    search.order.push_back(std::move(choice));
  }
  for (const sg::E2eRequirement& req : sg.requirements()) {
    const auto chain = sg.chain_for(req);
    if (chain.ok()) search.chains.emplace_back(&req, *chain);
  }

  BnbResult result;
  result.lower_bound = bound(search);
  if (result.lower_bound == kInf) {
    return Error{ErrorCode::kInfeasible,
                 "root relaxation proves the instance infeasible"};
  }
  dfs(search, 0);
  result.nodes_expanded = search.nodes_expanded;
  result.optimal = !search.budget_cutoff && !search.deadline_cutoff;

  if (!search.incumbent.has_value()) {
    if (search.deadline_cutoff) {
      return Error{ErrorCode::kTimeout,
                   "map deadline expired before a feasible placement"};
    }
    if (search.budget_cutoff) {
      return Error{ErrorCode::kResourceExhausted,
                   "node budget exhausted before a feasible placement"};
    }
    return Error{ErrorCode::kInfeasible,
                 "exhaustive search proves the instance infeasible"};
  }
  result.mapping = std::move(*search.incumbent);
  return result;
}

Result<Mapping> BnbMapper::map(const sg::ServiceGraph& sg,
                               const SubstrateView& substrate,
                               const catalog::NfCatalog& catalog) const {
  UNIFY_ASSIGN_OR_RETURN(BnbResult result,
                         map_exact(sg, substrate, catalog));
  return std::move(result.mapping);
}

}  // namespace unify::mapping
