#include "mapping/annealing_mapper.h"

#include <cmath>

#include "mapping/context.h"
#include "mapping/greedy_mapper.h"
#include "util/rng.h"

namespace unify::mapping {

namespace {

double objective(const Mapping& m, double delay_weight) {
  double delay = 0;
  for (const auto& [req, d] : m.requirement_delay) delay += d;
  return m.stats.bandwidth_hops + delay_weight * delay;
}

/// Evaluates a complete placement: route everything, check requirements,
/// return the finished mapping. nullopt when infeasible.
std::optional<Mapping> evaluate(
    const sg::ServiceGraph& sg, const model::Nffg& substrate,
    const catalog::NfCatalog& catalog,
    const std::map<std::string, std::string>& placement) {
  Context ctx(sg, substrate, catalog);
  for (const auto& [nf, host] : placement) {
    if (!ctx.place(nf, host).ok()) return std::nullopt;
  }
  if (!ctx.route_all().ok()) return std::nullopt;
  if (!ctx.check_requirements().ok()) return std::nullopt;
  return ctx.finish("annealing");
}

}  // namespace

Result<Mapping> AnnealingMapper::map(const sg::ServiceGraph& sg,
                                     const model::Nffg& substrate,
                                     const catalog::NfCatalog& catalog) const {
  // Seed with the greedy solution (fail fast when nothing is feasible).
  GreedyMapper seeder;
  UNIFY_ASSIGN_OR_RETURN(Mapping best, seeder.map(sg, substrate, catalog));
  if (sg.nfs().empty()) return best;
  double best_cost = objective(best, options_.delay_weight);

  std::map<std::string, std::string> current_placement = best.nf_host;
  Mapping current = best;
  double current_cost = best_cost;

  // Collect NF ids and, per NF, its candidate hosts on the empty substrate
  // (capacity feasibility of the full placement is re-checked by evaluate).
  std::vector<std::string> nf_ids;
  for (const auto& [nf_id, nf] : sg.nfs()) nf_ids.push_back(nf_id);
  Context probe(sg, substrate, catalog);
  std::map<std::string, std::vector<std::string>> candidates;
  for (const auto& [nf_id, nf] : sg.nfs()) {
    candidates.emplace(nf_id, probe.candidates(nf));
  }

  Rng rng(options_.seed);
  double temperature = options_.initial_temperature;
  for (int iter = 0; iter < options_.iterations; ++iter) {
    temperature *= options_.cooling;
    const std::string& nf = nf_ids[rng.next_below(nf_ids.size())];
    const auto& hosts = candidates.at(nf);
    if (hosts.size() < 2) continue;
    const std::string& new_host = hosts[rng.next_below(hosts.size())];
    if (new_host == current_placement.at(nf)) continue;

    auto moved = current_placement;
    moved[nf] = new_host;
    const auto candidate = evaluate(sg, substrate, catalog, moved);
    if (!candidate.has_value()) continue;
    const double cost = objective(*candidate, options_.delay_weight);
    const double delta = cost - current_cost;
    const bool accept =
        delta <= 0 ||
        rng.next_double() < std::exp(-delta / std::max(1e-9, temperature));
    if (!accept) continue;
    current_placement = std::move(moved);
    current = *candidate;
    current_cost = cost;
    if (cost < best_cost) {
      best = current;
      best_cost = cost;
    }
  }
  best.mapper_name = name();
  return best;
}

}  // namespace unify::mapping
