#include "mapping/annealing_mapper.h"

#include <cmath>

#include "mapping/context.h"
#include "mapping/greedy_mapper.h"
#include "util/rng.h"

namespace unify::mapping {

namespace {

// Health bias via EmbeddingScore::penalty: every NF parked on a flaky node
// makes the placement more expensive, so annealing drains degraded domains
// even when hops/delay tie.
double objective(const Mapping& m, double delay_weight,
                 const model::Nffg& substrate) {
  return score_mapping(m, substrate).total(delay_weight);
}

/// Re-synchronizes the persistent context to `placement`: tears every route
/// down, moves the placements that differ, re-routes and re-checks. Returns
/// the finished mapping, or nullopt when the placement is infeasible (the
/// context is then left partially synced; re-sync to a known-good placement
/// to recover). The end state is identical to evaluating `placement` on a
/// fresh Context — placement order does not affect the substrate state and
/// routing order is the SG link order either way — but skips the substrate
/// copy, index rebuild and cold path cache a fresh Context would pay.
std::optional<Mapping> resync(
    Context& ctx, const std::map<std::string, std::string>& placement) {
  for (const sg::SgLink& link : ctx.sg().links()) ctx.unroute(link.id);
  const std::map<std::string, std::string> current = ctx.placements();
  for (const auto& [nf, host] : current) {
    const auto want = placement.find(nf);
    if (want == placement.end() || want->second != host) ctx.unplace(nf);
  }
  for (const auto& [nf, host] : placement) {
    if (ctx.placements().count(nf) != 0) continue;
    if (!ctx.place(nf, host).ok()) return std::nullopt;
  }
  if (!ctx.route_all().ok()) return std::nullopt;
  if (!ctx.check_requirements().ok()) return std::nullopt;
  return ctx.finish("annealing");
}

}  // namespace

Result<Mapping> AnnealingMapper::map(const sg::ServiceGraph& sg,
                                     const SubstrateView& substrate,
                                     const catalog::NfCatalog& catalog) const {
  // Seed with the greedy solution (fail fast when nothing is feasible).
  GreedyMapper seeder;
  UNIFY_ASSIGN_OR_RETURN(Mapping best, seeder.map(sg, substrate, catalog));
  if (sg.nfs().empty()) return best;
  double best_cost =
      objective(best, options_.delay_weight, substrate.nffg());

  std::map<std::string, std::string> current_placement = best.nf_host;
  Mapping current = best;
  double current_cost = best_cost;

  // One context for the whole annealing run; every candidate placement is
  // evaluated by re-syncing it instead of copying the substrate anew.
  Context ctx(sg, substrate, catalog);
  if (!resync(ctx, current_placement).has_value()) {
    // The greedy placement routed on an identical substrate moments ago;
    // never expected, but fall back to it rather than crash.
    best.mapper_name = name();
    return best;
  }

  // Collect NF ids and, per NF, its candidate hosts on the empty substrate
  // (capacity feasibility of the full placement is re-checked by resync).
  std::vector<std::string> nf_ids;
  for (const auto& [nf_id, nf] : sg.nfs()) nf_ids.push_back(nf_id);
  Context probe(sg, substrate, catalog);
  std::map<std::string, std::vector<std::string>> candidates;
  for (const auto& [nf_id, nf] : sg.nfs()) {
    candidates.emplace(nf_id, probe.candidates(nf));
  }

  Rng rng(options_.seed);
  double temperature = options_.initial_temperature;
  for (int iter = 0; iter < options_.iterations; ++iter) {
    // Anytime behaviour under a portfolio deadline: the incumbent is
    // always a complete feasible mapping, so stop refining and return it.
    if (ScopedMapDeadline::expired()) break;
    temperature *= options_.cooling;
    const std::string& nf = nf_ids[rng.next_below(nf_ids.size())];
    const auto& hosts = candidates.at(nf);
    if (hosts.size() < 2) continue;
    const std::string& new_host = hosts[rng.next_below(hosts.size())];
    if (new_host == current_placement.at(nf)) continue;

    auto moved = current_placement;
    moved[nf] = new_host;
    // No rollback on failure or reject: a resync's end state depends only
    // on its target placement, and the next candidate's resync tears the
    // context down first anyway.
    const auto candidate = resync(ctx, moved);
    if (!candidate.has_value()) continue;
    const double cost =
        objective(*candidate, options_.delay_weight, substrate.nffg());
    const double delta = cost - current_cost;
    const bool accept =
        delta <= 0 ||
        rng.next_double() < std::exp(-delta / std::max(1e-9, temperature));
    if (!accept) continue;
    current_placement = std::move(moved);
    current = *candidate;
    current_cost = cost;
    if (cost < best_cost) {
      best = current;
      best_cost = cost;
    }
  }
  best.mapper_name = name();
  return best;
}

}  // namespace unify::mapping
