// Exact branch-and-bound embedding: the ground-truth baseline the
// conformance suite measures every heuristic mapper against.
//
// Depth-first search over (NF, candidate host) assignments in chain order,
// scoring complete placements canonically (place everything, route_all in
// SG-link order, EmbeddingScore) and pruning partial ones with an
// admissible lower bound built from pristine-substrate relaxations:
//   - cost:    bandwidth × unmasked min-hops per SG link (reservations and
//              bandwidth floors only lengthen real routes);
//   - delay:   bandwidth-floor-free pure link-delay shortest paths, which
//              under-estimate route()'s biased choice (also used to prune
//              branches whose optimistic chain delay already busts a
//              requirement);
//   - penalty: placed hosts exactly, unplaced NFs by their cheapest
//              candidate.
// Half-resolved SG links relax over the unplaced end's candidate set;
// fully-unresolved links contribute zero. All three relaxations
// under-estimate the canonical objective, so a completed search is exact.
//
// Exactness is only claimed when the search finishes inside the node
// budget (and any portfolio deadline): BnbResult::optimal says whether the
// returned mapping is *proven* minimal w.r.t.
// EmbeddingScore::total(delay_weight). Instances with more than max_nfs
// NFs are refused up front (kResourceExhausted) — this is a baseline for
// small instances, not a production mapper.
#pragma once

#include <cstdint>

#include "mapping/mapper.h"

namespace unify::mapping {

struct BnbOptions {
  /// Refuse instances with more NFs than this (exactness gets exponential).
  std::size_t max_nfs = 10;
  /// Search-tree node budget; past it the incumbent is returned non-proven.
  std::size_t max_nodes = 200000;
  /// Scalarization of the objective being proven minimal.
  double delay_weight = 1.0;
};

struct BnbResult {
  Mapping mapping;
  /// True when the search completed: `mapping` is the exact optimum of
  /// EmbeddingScore::total(delay_weight) over all candidate placements.
  bool optimal = false;
  /// Root relaxation (lower bound on any placement's objective).
  double lower_bound = 0;
  std::uint64_t nodes_expanded = 0;
};

class BnbMapper final : public Mapper {
 public:
  explicit BnbMapper(BnbOptions options = {}) : options_(options) {}
  [[nodiscard]] std::string name() const override { return "bnb"; }

  /// Full result with the optimality proof flags.
  [[nodiscard]] Result<BnbResult> map_exact(
      const sg::ServiceGraph& sg, const SubstrateView& substrate,
      const catalog::NfCatalog& catalog) const;

  /// Mapper interface: the incumbent of map_exact (proof flags dropped).
  [[nodiscard]] Result<Mapping> map(
      const sg::ServiceGraph& sg, const SubstrateView& substrate,
      const catalog::NfCatalog& catalog) const override;

 private:
  BnbOptions options_;
};

}  // namespace unify::mapping
