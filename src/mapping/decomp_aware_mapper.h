// Decomposition-aware mapping: selects NF decompositions *during* the
// mapping process (paper §2, after [Sahhaf et al., NetSoft 2015]) instead
// of expanding the service graph up front.
//
// The mapper enumerates decomposition choices for the top-level
// decomposable NFs (bounded by max_combinations), expands a copy of the
// service graph per choice (nested decomposables use their first rule),
// maps it with the inner mapper, and keeps the best feasible result —
// least substrate load (bandwidth x hops), ties broken by total chain
// delay. Because the mapping references the expanded NF ids, the result
// carries the expanded service graph alongside the mapping.
#pragma once

#include <memory>

#include "mapping/mapper.h"

namespace unify::mapping {

struct DecompResult {
  sg::ServiceGraph expanded;
  Mapping mapping;
  std::size_t combinations_tried = 0;
  std::size_t combinations_feasible = 0;
};

class DecompAwareMapper final : public Mapper {
 public:
  DecompAwareMapper(std::shared_ptr<const Mapper> inner,
                    std::size_t max_combinations = 64)
      : inner_(std::move(inner)), max_combinations_(max_combinations) {}

  [[nodiscard]] std::string name() const override {
    return "decomp-aware(" + inner_->name() + ")";
  }

  /// Full result including the expanded service graph the mapping refers to.
  [[nodiscard]] Result<DecompResult> map_with_decomposition(
      const sg::ServiceGraph& sg, const SubstrateView& substrate,
      const catalog::NfCatalog& catalog) const;

  /// Mapper interface; discards the expanded graph (only meaningful when
  /// the caller reconstructs it, prefer map_with_decomposition).
  [[nodiscard]] Result<Mapping> map(
      const sg::ServiceGraph& sg, const SubstrateView& substrate,
      const catalog::NfCatalog& catalog) const override;

 private:
  std::shared_ptr<const Mapper> inner_;
  std::size_t max_combinations_;
};

}  // namespace unify::mapping
