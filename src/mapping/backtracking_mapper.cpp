#include "mapping/backtracking_mapper.h"

#include <algorithm>
#include <set>

#include "mapping/context.h"

namespace unify::mapping {

namespace {

/// Search state shared down the recursion.
struct Search {
  Context* ctx;
  std::vector<std::string> order;  ///< NF ids, chain order
  std::size_t steps = 0;
  std::size_t max_steps = 0;
  bool deadline_killed = false;
};

/// Routes every SG link whose endpoints both resolve and that is not routed
/// yet; returns the link ids routed here (for undo) or nullopt on failure.
std::optional<std::vector<std::string>> route_ready(Search& search) {
  std::vector<std::string> routed;
  for (const sg::SgLink& link : search.ctx->sg().links()) {
    if (search.ctx->is_routed(link.id)) continue;
    if (!search.ctx->node_of(link.from.node).ok() ||
        !search.ctx->node_of(link.to.node).ok()) {
      continue;
    }
    if (!search.ctx->route(link).ok()) {
      for (const std::string& undo : routed) search.ctx->unroute(undo);
      return std::nullopt;
    }
    routed.push_back(link.id);
  }
  return routed;
}

/// Partial delay bound: any fully- or partially-routed requirement must
/// still be within budget.
bool delays_ok(const Context& ctx) {
  for (const sg::E2eRequirement& req : ctx.sg().requirements()) {
    if (ctx.chain_delay(req) > req.max_delay) return false;
  }
  return true;
}

bool dfs(Search& search, std::size_t depth) {
  if (search.steps++ > search.max_steps) return false;
  // Deadline poll amortized over the steady_clock read: a kill mid-search
  // has no incumbent to fall back to, so it surfaces as budget exhaustion.
  if ((search.steps & 0xFF) == 0 && ScopedMapDeadline::expired()) {
    search.deadline_killed = true;
    search.steps = search.max_steps + 1;
    return false;
  }
  if (depth == search.order.size()) {
    return search.ctx->route_all().ok() &&
           search.ctx->check_requirements().ok();
  }
  const std::string& nf_id = search.order[depth];
  const sg::SgNf* nf = search.ctx->sg().find_nf(nf_id);
  // candidates() is id-ascending; visit healthy domains first so the first
  // complete solution drains flaky nodes (stable sort keeps id order as the
  // tie-break).
  std::vector<std::string> hosts = search.ctx->candidates(*nf);
  std::stable_sort(hosts.begin(), hosts.end(),
                   [&](const std::string& a, const std::string& b) {
                     return search.ctx->node_penalty(a) <
                            search.ctx->node_penalty(b);
                   });
  for (const std::string& host : hosts) {
    if (!search.ctx->place(nf_id, host).ok()) continue;
    const auto routed = route_ready(search);
    if (routed.has_value() && delays_ok(*search.ctx)) {
      if (dfs(search, depth + 1)) return true;
    }
    if (routed.has_value()) {
      for (const std::string& undo : *routed) search.ctx->unroute(undo);
    }
    search.ctx->unplace(nf_id);
  }
  return false;
}

}  // namespace

Result<Mapping> BacktrackingMapper::map(const sg::ServiceGraph& sg,
                                        const SubstrateView& substrate,
                                        const catalog::NfCatalog& catalog) const {
  Context ctx(sg, substrate, catalog);

  // Visit NFs in chain order (tight pruning), then any leftovers by id.
  std::vector<std::string> order;
  std::set<std::string> seen;
  for (const sg::E2eRequirement& req : sg.requirements()) {
    const auto seq = sg.nf_sequence_for(req);
    if (!seq.ok()) continue;
    for (const std::string& nf : *seq) {
      if (seen.insert(nf).second) order.push_back(nf);
    }
  }
  for (const auto& [nf_id, nf] : sg.nfs()) {
    if (seen.insert(nf_id).second) order.push_back(nf_id);
  }

  Search search{&ctx, std::move(order), 0, options_.max_search_steps};
  if (!dfs(search, 0)) {
    if (search.deadline_killed) {
      return Error{ErrorCode::kTimeout, "map deadline expired mid-search"};
    }
    const bool exhausted = search.steps > search.max_steps;
    return Error{ErrorCode::kInfeasible,
                 exhausted ? "search budget exhausted after " +
                                 std::to_string(search.steps) + " steps"
                           : "exhaustive search found no feasible mapping"};
  }
  return ctx.finish(name());
}

}  // namespace unify::mapping
