// HEFT/PEFT-style list-scheduling embedding.
//
// Classic list scheduling from the task-mapping literature adapted to
// chain embedding: every NF gets an upward rank — the optimistic delay
// from hosting it anywhere feasible to the chain's egress SAP, computed
// backwards over Context::delay_between() like PEFT's optimistic cost
// table — and NFs are placed in descending rank order (most critical
// first). Each placement picks the host minimizing arrival delay from the
// already-resolved neighbours plus the host's optimistic cost-to-go plus
// its health penalty, so flaky domains drain exactly like in the greedy
// and DP mappers. One pass, no backtracking: fast, and strong on chains
// whose tail is the bottleneck (greedy commits the head first and starves
// the tail; the rank order commits the critical stage first).
#pragma once

#include "mapping/mapper.h"

namespace unify::mapping {

class ListMapper final : public Mapper {
 public:
  explicit ListMapper(MapperOptions options = {}) : options_(options) {}
  [[nodiscard]] std::string name() const override { return "list-heft"; }
  [[nodiscard]] Result<Mapping> map(
      const sg::ServiceGraph& sg, const SubstrateView& substrate,
      const catalog::NfCatalog& catalog) const override;

 private:
  MapperOptions options_;
};

}  // namespace unify::mapping
