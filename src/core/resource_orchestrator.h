// Resource Orchestrator (RO): the manager of the joint SFC control plane.
//
// The RO owns a set of southbound domains behind DomainAdapter interfaces
// (native technology domains or child UNIFY domains via the Unify RPC
// client — it cannot tell the difference, which is the point), maintains
// the merged multi-domain resource view, maps service graphs onto it with a
// pluggable embedding algorithm (optionally decomposition-aware), splits
// the resulting configuration per domain and pushes each slice south.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "adapters/domain_adapter.h"
#include "catalog/nf_catalog.h"
#include "core/health_manager.h"
#include "core/pinned_mapper.h"
#include "core/sharded_state.h"
#include "mapping/decomp_aware_mapper.h"
#include "mapping/mapper.h"
#include "mapping/portfolio.h"
#include "model/nffg.h"
#include "model/nffg_merge.h"
#include "sg/service_graph.h"
#include "telemetry/metrics.h"
#include "util/result.h"

namespace unify::util {
class OrchestrationPool;
}  // namespace unify::util

namespace unify::core {

/// Southbound push behaviour (per-domain retry, fan-out width, dirty
/// tracking). All knobs are per-RO; the defaults reproduce a plain
/// attempt-once push with clean-domain skipping.
struct PushPolicy {
  /// Total tries per domain per fan-out. Retries happen only on
  /// kUnavailable/kTimeout (transient transport faults); rejections and
  /// semantic errors surface immediately.
  int max_attempts = 1;
  /// Host-time sleep before the first retry; doubles (times
  /// backoff_multiplier) on each further one.
  std::int64_t backoff_initial_us = 200;
  double backoff_multiplier = 2.0;
  /// Caps concurrently pushed exclusion groups (0 = pool width, 1 =
  /// strictly sequential in domain order).
  std::size_t parallelism = 0;
  /// Skip domains whose slice is byte-identical to the last acknowledged
  /// push at an unchanged adapter view_epoch(). Disable for ablation.
  bool skip_clean = true;
};

struct RoOptions {
  /// Enumerate NF decompositions during mapping (paper showcase iii).
  bool use_decomposition = true;
  std::size_t max_decomposition_combinations = 32;
  /// Worker pool for batch mapping and the southbound push fan-out;
  /// nullptr selects the shared process-scoped pool
  /// (util::OrchestrationPool::process_pool()). One pool serves every RO
  /// and service layer in the process — inject a private instance only
  /// for isolation in tests.
  util::OrchestrationPool* pool = nullptr;
  PushPolicy push;
  /// Per-domain circuit breaking (DESIGN.md §10).
  HealthPolicy health;
  /// Replace the injected mapper with a portfolio racing it against the
  /// standard mapper field (DESIGN.md §15): every embedding runs K mappers
  /// speculatively on the pool and commits the best-scoring feasible
  /// result through the normal conflict-checked path. The injected mapper
  /// keeps racing as lane 0; same-named standard racers are dropped so
  /// per-racer telemetry stays unambiguous.
  bool race_portfolio = false;
  /// Cooperative wall-clock budget per race (0 = none). Only meaningful
  /// with race_portfolio; see ScopedMapDeadline for the determinism
  /// trade-off.
  std::int64_t portfolio_deadline_us = 0;
};

class ResourceOrchestrator {
 public:
  ResourceOrchestrator(std::string name,
                       std::shared_ptr<const mapping::Mapper> mapper,
                       catalog::NfCatalog catalog, RoOptions options = {});

  /// Registers a southbound domain. Must happen before initialize().
  Result<void> add_domain(std::unique_ptr<adapters::DomainAdapter> adapter);

  /// Fetches every domain view and merges them (stitching shared SAPs)
  /// into the RO's global resource view.
  Result<void> initialize();
  [[nodiscard]] bool initialized() const noexcept { return initialized_; }

  /// The merged view including everything deployed through this RO
  /// (placements, flowrules, link reservations).
  [[nodiscard]] const model::Nffg& global_view() const noexcept {
    return view_.read();
  }

  /// The sharded copy-on-write container behind global_view(): epoch,
  /// per-domain shard stamps and CoW/snapshot telemetry. Read-only;
  /// benches and tests use it to observe snapshot behaviour.
  [[nodiscard]] const ShardedViewState& view_state() const noexcept {
    return view_;
  }

  struct Deployment {
    std::string request_id;
    sg::ServiceGraph original;  ///< the request as submitted
    sg::ServiceGraph expanded;  ///< post-decomposition service graph
    mapping::Mapping mapping;
    /// Submission order; the healing pass re-embeds stranded deployments
    /// oldest-first so early tenants win contention for surviving capacity.
    std::uint64_t sequence = 0;
    /// Set when healing could not re-place this deployment off a down
    /// domain: it is kept (not torn down) and retried on the next heal().
    bool degraded = false;
    std::string degraded_reason;
  };

  /// Maps and deploys a service graph. On success the placement is pushed
  /// to every affected domain and recorded under the returned request id
  /// (the service graph's id). Fails without side effects when mapping is
  /// infeasible; a domain-push failure after successful mapping is
  /// reported and the global view keeps the accepted state of the
  /// domains that succeeded.
  Result<std::string> deploy(const sg::ServiceGraph& request);

  /// Maps a batch of service graphs concurrently, then deploys them.
  ///
  /// Embedding is the expensive phase and reads only the (unchanging)
  /// global view, so every request is mapped speculatively in parallel on
  /// the shared OrchestrationPool (`workers` caps this batch's parallelism;
  /// 0 = the pool's full width; 1 runs inline), each worker running the
  /// mapper on its own substrate copy. Commits then happen strictly
  /// sequentially in request order: each speculative mapping is
  /// re-validated against the view as left by the earlier commits, and
  /// re-mapped on the spot when the validation detects a resource
  /// conflict. The outcome is deterministic (independent of thread
  /// scheduling) and matches the equivalent sequential deploy() loop
  /// whenever the requests do not contend for the same substrate
  /// resources.
  ///
  /// Returns one Result per request, index-aligned with `requests`.
  std::vector<Result<std::string>> map_batch(
      const std::vector<sg::ServiceGraph>& requests, std::size_t workers = 0);

  /// The worker pool batch mapping runs on (shared process pool unless one
  /// was injected through RoOptions).
  [[nodiscard]] util::OrchestrationPool& pool() const noexcept;

  /// Deploys with placements fixed by the caller (full-view client did the
  /// embedding): NF hosts come from `pins`, only links are routed, no
  /// decomposition is applied.
  Result<std::string> deploy_pinned(
      const sg::ServiceGraph& request,
      const std::map<std::string, std::string>& pins);

  /// Tears a deployment down everywhere and releases its resources.
  Result<void> remove(const std::string& request_id);

  /// Re-maps a live deployment onto the current view (break-before-make
  /// migration, the paper's "migration between technologies"): useful
  /// after capacities changed or other services freed resources. Restores
  /// the previous placement when the new mapping fails.
  Result<void> redeploy(const std::string& request_id);

  /// Re-fetches one domain's view and refreshes the capacities and
  /// attributes of its BiS-BiS nodes in the global view (topology changes
  /// are not supported; deployed state is kept). Models a domain
  /// re-advertising resources.
  Result<void> refresh_domain(const std::string& domain);

  /// Pulls NF operational statuses up from the domains into the view.
  Result<void> sync_statuses();

  /// Recomputes every domain's slice from the current view and pushes the
  /// dirty ones south (same fan-out engine deploy()/remove() use). Useful
  /// after out-of-band view edits and as the bench driver.
  Result<void> resync_domains();

  // -- domain health ------------------------------------------------------

  /// Per-domain circuit-breaker state (fed by every southbound outcome).
  [[nodiscard]] const HealthManager& health() const noexcept {
    return health_;
  }

  /// Forces a domain's circuit open (operator drain / out-of-band failure
  /// signal): the domain leaves the push/fetch fan-out and its capacity is
  /// masked out of the global view until heal() readmits it.
  Result<void> open_circuit(const std::string& domain,
                            const std::string& reason);

  /// Out-of-band liveness observation for one domain — the heartbeat feed
  /// (DESIGN.md §14): a session's keepalive verdicts stream in here with
  /// exactly the weight of a push/fetch outcome, so a silently partitioned
  /// domain trips its breaker in O(heartbeat interval) instead of waiting
  /// for the next push deadline. Wire a resilient session's on_liveness
  /// hook to this. Same-thread only (like every RO entry point).
  Result<void> note_domain_liveness(const std::string& domain,
                                    const Result<void>& observation);

  /// Outcome of one healing pass (request/domain ids, in processing order).
  struct HealReport {
    std::vector<std::string> readmitted;  ///< domains whose probe succeeded
    std::vector<std::string> still_down;  ///< domains whose probe failed
    std::vector<std::string> healed;      ///< requests re-embedded onto survivors
    std::vector<std::string> degraded;    ///< requests that could not be re-placed
    std::vector<std::string> recovered;   ///< degraded requests whose domain returned
    /// Largest CPU footprint that was simultaneously released-but-not-yet-
    /// re-placed during this pass. Make-before-break keeps this at 0 (the
    /// replacement is installed before the old placement is released); the
    /// legacy uninstall-then-redeploy path reports the biggest stranded
    /// deployment it had in flight.
    double max_capacity_dip_cpu = 0;
    /// Probes skipped this pass because the domain is still inside its
    /// exponential backoff window (HealthPolicy::probe_backoff_initial).
    std::uint64_t probes_deferred = 0;
    /// Failure of the final readmission resync, if any (the heal itself
    /// still counts: placements and health state are already updated).
    std::optional<Error> resync_error;
  };

  /// One pass of the healing loop: half-open probe every down domain
  /// (readmitting responsive ones — capacity unmasked, slice resynced) and
  /// liveness-probe every degraded one (a pass clears its failure streak
  /// and embedding-cost penalty; a failure feeds the streak), then walk
  /// deployments in submission order and re-embed every one with an NF or
  /// routed link on a still-down domain. With
  /// HealthPolicy::make_before_break (the default) the replacement is
  /// mapped speculatively against the masked view first — in parallel on
  /// the shared pool, reusing the map_batch machinery — and the old
  /// placement is released only after its replacement embedding verified,
  /// so a heal pass never reduces the placed-service count and never dips
  /// substrate capacity below what the survivors need. Requests that cannot
  /// be re-placed are marked degraded — kept, not torn down, old books
  /// untouched — and retried on the next pass. Deterministic for a given
  /// fault pattern.
  Result<HealReport> heal();

  /// Status of one NF by instance id (searches the view).
  [[nodiscard]] std::optional<model::NfStatus> nf_status(
      const std::string& nf_id) const;

  [[nodiscard]] const std::map<std::string, Deployment>& deployments()
      const noexcept {
    return deployments_;
  }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const catalog::NfCatalog& catalog() const noexcept {
    return catalog_;
  }
  [[nodiscard]] telemetry::Registry& metrics() noexcept { return metrics_; }
  /// The portfolio racer when RoOptions::race_portfolio is on (it is then
  /// also what mapper() runs); nullptr otherwise.
  [[nodiscard]] const mapping::PortfolioMapper* portfolio() const noexcept {
    return portfolio_.get();
  }
  [[nodiscard]] const std::vector<std::string>& domain_names() const noexcept {
    return domain_names_;
  }

 private:
  /// Mapping-phase counters produced by prepare(); folded into metrics_ by
  /// the (single-threaded) caller so prepare() can run on worker threads.
  struct PrepareStats {
    std::uint64_t decomposition_combinations = 0;
    std::uint64_t pre_expansions = 0;
  };

  /// Admission checks with no side effects: id set and unused, graph
  /// structurally valid, NF ids free in `view`.
  Result<void> admit(const sg::ServiceGraph& request) const;
  /// The pure mapping phase of deploy(): expansion/decomposition plus
  /// embedding against `view` (an Nffg or an epoch-frozen ViewSnapshot —
  /// speculative batch workers pass the latter so every worker shares one
  /// immutable view and topology index). Thread-safe (const, touches no
  /// RO state).
  Result<Deployment> prepare(const sg::ServiceGraph& request,
                             const mapping::SubstrateView& view,
                             PrepareStats& stats) const;
  /// prepare() against a snapshot of the current view; the snapshot is
  /// released before returning, so a commit right after mutates the view
  /// in place instead of triggering a copy-on-write clone.
  Result<Deployment> prepare_current(const sg::ServiceGraph& request,
                                     PrepareStats& stats) const;
  Result<std::string> commit(Deployment deployment);

  /// Last acknowledged push per domain (index-aligned with adapters_).
  /// Two-tier dirty tracking, cheapest test first:
  ///  1. `acked_stamp` — the domain's ShardedViewState shard stamp when the
  ///     slice was cut. If it still matches (and the adapter epoch does),
  ///     no view mutation touched the shard since the ack: skip without
  ///     even materializing the slice.
  ///  2. `acked_hash` — content hash of the acked slice. If the stamp
  ///     moved but the re-cut slice hashes the same, the mutations were
  ///     no-ops for this domain: skip the push, refresh the stamp.
  struct DomainPushState {
    std::uint64_t acked_hash = 0;
    std::uint64_t acked_stamp = 0;
    std::uint64_t acked_epoch = 0;
    bool valid = false;
  };

  /// Outcome of one domain's push task, filled in by a pool worker.
  /// Workers write only their own slot; the caller folds after the join.
  struct PushOutcome {
    Result<void> result = Result<void>::success();
    int attempts = 0;
  };

  /// Pushes `slice` to adapters_[index] with the configured retry policy
  /// (transient kUnavailable/kTimeout errors only). Runs on pool workers:
  /// touches the adapter and `outcome`, nothing else on the RO.
  void push_one(std::size_t index, const model::Nffg& slice,
                PushOutcome& outcome) const;

  /// The southbound fan-out: splits the view per domain, skips clean
  /// domains, groups the rest by adapters' exclusion_key() (adapters
  /// sharing simulated machinery must not run concurrently) and pushes
  /// each group as one pool task. Every domain is attempted even when
  /// others fail; failures are aggregated into one MultiError.
  Result<void> push_slices();

  /// Fetches every domain's view concurrently on the pool (same exclusion
  /// grouping as push_slices). Results are index-aligned with adapters_.
  std::vector<Result<model::Nffg>> fetch_views_parallel();

  /// Groups adapter indices by exclusion_key(): null keys get singleton
  /// groups, equal non-null keys share one (ordered) group.
  [[nodiscard]] std::vector<std::vector<std::size_t>> exclusion_groups(
      const std::vector<std::size_t>& indices) const;

  /// Capacity/bandwidth masked out of view_ while circuits are open, keyed
  /// by node/link id so the original values can be restored on readmission.
  struct ViewMask {
    std::map<std::string, model::Resources> bb_capacity;
    std::map<std::string, double> link_bandwidth;
  };

  /// Rebuilds the view mask from scratch for the currently open circuits:
  /// restores every previously masked value, then zeroes the capacity of
  /// all BiS-BiS on down domains and the bandwidth of every link touching
  /// them. Idempotent and order-independent, so adjacent domains may go
  /// down and recover in any order.
  void remask_view();

  /// Feeds one domain's push/fetch outcome into the health manager,
  /// remasking the view when this observation opened the circuit.
  void note_southbound_outcome(std::size_t index, const Result<void>& result);

  /// True when the deployment has an NF placed on — or a routed path
  /// crossing — any of `down` (domain names).
  [[nodiscard]] bool touches_domains(
      const Deployment& deployment,
      const std::set<std::string>& down) const;

  /// Overwrites the view statuses of every NF of this deployment.
  void set_deployment_nf_status(const Deployment& deployment,
                                model::NfStatus status);

  /// Projects HealthManager::penalty() onto every BiS-BiS of the view
  /// (model::BisBis::health_penalty) so mappers bias node selection away
  /// from flaky domains. Called after every health observation/transition.
  void refresh_health_penalties();

  /// Make-before-break swap: atomically (w.r.t. the books) replaces the
  /// deployment `id` with `replacement`, whose mapping was already verified
  /// against the current view with the old placement still installed. The
  /// old placement is uninstalled, the replacement installed and pushed; on
  /// any failure the old placement and books are restored. Preserves the
  /// deployment's submission sequence.
  Result<void> heal_swap(const std::string& id, Deployment replacement);

  /// CPU currently booked in the view for this deployment's NFs (the
  /// capacity a break-before-make heal would put in flight).
  [[nodiscard]] double deployment_cpu(const Deployment& deployment) const;

  /// Domains whose slice can change when `mapping` is installed or
  /// uninstalled: the domains of every NF host plus both endpoint domains
  /// of every routed link (a conservative superset — cross-domain links
  /// appear in no slice, but their endpoint domains are cheap to stamp).
  [[nodiscard]] std::vector<std::string> touched_domains(
      const mapping::Mapping& mapping) const;

  /// Moves the portfolio's accumulated race telemetry into metrics_. Called
  /// from the single-threaded tails of deploy/map_batch/redeploy/heal (the
  /// races themselves run on pool workers, where Registry is off-limits).
  void drain_portfolio_metrics();

  std::string name_;
  std::shared_ptr<const mapping::Mapper> mapper_;
  /// Set (and aliased by mapper_) when options_.race_portfolio.
  std::shared_ptr<const mapping::PortfolioMapper> portfolio_;
  catalog::NfCatalog catalog_;
  RoOptions options_;
  std::vector<std::unique_ptr<adapters::DomainAdapter>> adapters_;
  std::vector<std::string> domain_names_;
  std::vector<DomainPushState> push_state_;
  /// The merged global view, sharded by domain: copy-on-write with
  /// per-domain shard stamps. Readers (speculative mappers) work against
  /// epoch-frozen snapshots; mutations go through view_.mut() and stamp
  /// the domains they touch so push_slices() can skip clean shards.
  ShardedViewState view_;
  bool initialized_ = false;
  std::map<std::string, Deployment> deployments_;
  std::uint64_t next_sequence_ = 1;
  HealthManager health_;
  ViewMask mask_;
  telemetry::Registry metrics_;
};

}  // namespace unify::core
