#include "core/virtualizer.h"

#include <algorithm>

#include "graph/algorithms.h"
#include "model/nffg_hash.h"
#include "model/topology_index.h"
#include "util/log.h"

namespace unify::core {

Virtualizer::Virtualizer(ResourceOrchestrator& ro, ViewPolicy policy,
                         std::string big_node_id)
    : ro_(&ro),
      policy_(policy),
      big_node_id_(big_node_id.empty() ? ro.name() + ".big"
                                       : std::move(big_node_id)) {}

Result<model::Nffg> Virtualizer::render_single_bisbis() const {
  const model::Nffg& under = ro_->global_view();
  model::Nffg view{ro_->name() + "-single-view"};

  model::BisBis big;
  big.id = big_node_id_;
  big.name = ro_->name() + " (single BiS-BiS)";
  for (const auto& [bb_id, bb] : under.bisbis()) {
    big.capacity += bb.capacity;
  }

  // One port per SAP, plus the SAP nodes and attachment links. The
  // advertised internal delay is the worst SAP-to-SAP transit minus the
  // attachment legs, so a client's delay arithmetic on the collapsed view
  // stays conservative.
  const model::TopologyIndex index(under);
  std::vector<std::string> sap_ids;
  for (const auto& [sap_id, sap] : under.saps()) sap_ids.push_back(sap_id);

  std::map<std::string, double> attach_delay;
  std::map<std::string, double> attach_bw;
  for (const std::string& sap_id : sap_ids) {
    for (const model::Link* link : under.links_of(sap_id)) {
      attach_delay[sap_id] = link->attrs.delay;
      attach_bw[sap_id] = link->attrs.bandwidth;
    }
  }
  double worst_transit = 0;
  for (const std::string& a : sap_ids) {
    const auto tree = graph::shortest_path_tree(
        index.graph().node_capacity(), index.node_of(a),
        index.scan_by_delay(0));
    for (const std::string& b : sap_ids) {
      if (a == b) continue;
      const double dist = tree.dist[index.node_of(b)];
      if (dist == graph::kInf) continue;
      worst_transit = std::max(
          worst_transit, dist - attach_delay[a] - attach_delay[b]);
    }
  }
  big.internal_delay = std::max(0.0, worst_transit);

  int port = 0;
  for (const std::string& sap_id : sap_ids) {
    big.ports.push_back(model::Port{port, "to-" + sap_id});
    ++port;
  }
  UNIFY_RETURN_IF_ERROR(view.add_bisbis(std::move(big)));
  port = 0;
  for (const std::string& sap_id : sap_ids) {
    UNIFY_RETURN_IF_ERROR(
        view.add_sap(model::Sap{sap_id, under.find_sap(sap_id)->name}));
    UNIFY_RETURN_IF_ERROR(view.add_bidirectional_link(
        "v-" + sap_id, model::PortRef{sap_id, 0},
        model::PortRef{big_node_id_, port},
        model::LinkAttrs{attach_bw[sap_id], attach_delay[sap_id]}));
    ++port;
  }
  return view;
}

Result<void> Virtualizer::ensure_skeleton() {
  if (skeleton_.has_value()) return Result<void>::success();
  if (!ro_->initialized()) {
    return Error{ErrorCode::kUnavailable, "RO not initialized"};
  }
  if (policy_ == ViewPolicy::kSingleBisBis) {
    UNIFY_ASSIGN_OR_RETURN(model::Nffg view, render_single_bisbis());
    skeleton_ = std::move(view);
  } else {
    // Full view: the underlying topology without deployed state.
    model::Nffg view = ro_->global_view();
    view.set_id(ro_->name() + "-full-view");
    for (auto& [bb_id, bb] : view.bisbis()) {
      bb.nfs.clear();
      bb.flowrules.clear();
    }
    for (auto& [link_id, link] : view.links()) link.reserved = 0;
    skeleton_ = std::move(view);
  }
  accepted_ = *skeleton_;
  accepted_hash_ = model::content_hash(accepted_);
  UNIFY_ASSIGN_OR_RETURN(
      accepted_translated_,
      config_to_service_graph(accepted_, *skeleton_, "accepted"));
  return Result<void>::success();
}

model::NfStatus Virtualizer::rolled_up_status(const std::string& nf_id) const {
  // The RO may have decomposed this NF into components named
  // "<nf_id>.<suffix>...". Aggregate across all of them.
  bool any = false, all_running = true, any_failed = false,
       any_deploying = false;
  for (const auto& [bb_id, bb] : ro_->global_view().bisbis()) {
    for (const auto& [id, nf] : bb.nfs) {
      if (id != nf_id && !strings::starts_with(id, nf_id + ".")) continue;
      any = true;
      all_running &= nf.status == model::NfStatus::kRunning;
      any_failed |= nf.status == model::NfStatus::kFailed;
      any_deploying |= nf.status == model::NfStatus::kDeploying ||
                       nf.status == model::NfStatus::kRequested;
    }
  }
  if (!any) return model::NfStatus::kRequested;
  if (any_failed) return model::NfStatus::kFailed;
  if (any_deploying) return model::NfStatus::kDeploying;
  return all_running ? model::NfStatus::kRunning : model::NfStatus::kStopped;
}

Result<model::Nffg> Virtualizer::get_config() {
  UNIFY_RETURN_IF_ERROR(ensure_skeleton());
  model::Nffg out = accepted_;
  for (auto& [bb_id, bb] : out.bisbis()) {
    for (auto& [nf_id, nf] : bb.nfs) {
      nf.status = rolled_up_status(nf_id);
    }
  }
  return out;
}

std::vector<std::string> Virtualizer::active_requests() const {
  std::vector<std::string> out;
  for (const auto& [id, service] : services_) out.push_back(service.ro_request);
  return out;
}

Result<void> Virtualizer::edit_config(const model::Nffg& desired) {
  UNIFY_RETURN_IF_ERROR(ensure_skeleton());
  ++edits_;

  // Declarative no-op: a desired config hashing identically to the last
  // accepted one changes nothing — skip the translate/diff entirely (a
  // polling client would otherwise pay a full config diff per poll).
  if (accepted_hash_.has_value() &&
      model::content_hash(desired) == *accepted_hash_) {
    ro_->metrics().add("virt.edit.noop_skips");
    return Result<void>::success();
  }

  UNIFY_ASSIGN_OR_RETURN(
      TranslatedConfig incoming,
      config_to_service_graph(desired, *skeleton_, "desired"));
  const sg::ServiceGraph& new_sg = incoming.sg;
  const sg::ServiceGraph& old_sg = accepted_translated_->sg;
  // From here on the edit may remove/deploy services; if it fails midway
  // the deployed state no longer matches accepted_, so a recovery push of
  // the accepted config must run the full diff. Re-armed on acceptance.
  accepted_hash_.reset();

  // --- 1. find client-level elements that disappeared or changed.
  std::set<std::string> dirty_nfs;
  std::set<std::string> dirty_links;
  for (const auto& [nf_id, nf] : old_sg.nfs()) {
    const sg::SgNf* now = new_sg.find_nf(nf_id);
    if (now == nullptr || !(*now == nf)) dirty_nfs.insert(nf_id);
    // Full-view clients may also move an NF: that is a placement change.
    if (policy_ == ViewPolicy::kFull && now != nullptr &&
        incoming.pinned_hosts.at(nf_id) !=
            accepted_translated_->pinned_hosts.at(nf_id)) {
      dirty_nfs.insert(nf_id);
    }
  }
  for (const sg::SgLink& link : old_sg.links()) {
    const sg::SgLink* now = new_sg.find_link(link.id);
    if (now == nullptr || !(*now == link)) dirty_links.insert(link.id);
  }
  // An NF whose constraint set changed must be redeployed.
  const auto constraints_of = [](const sg::ServiceGraph& graph,
                                 const std::string& nf) {
    std::vector<sg::PlacementConstraint> out;
    for (const sg::PlacementConstraint& c : graph.constraints()) {
      if (c.nf_a == nf || c.nf_b == nf) out.push_back(c);
    }
    return out;
  };
  for (const auto& [nf_id, nf] : old_sg.nfs()) {
    if (new_sg.find_nf(nf_id) != nullptr &&
        constraints_of(old_sg, nf_id) != constraints_of(new_sg, nf_id)) {
      dirty_nfs.insert(nf_id);
    }
  }
  std::set<std::string> dirty_reqs;
  for (const sg::E2eRequirement& req : old_sg.requirements()) {
    const auto now = std::find_if(
        new_sg.requirements().begin(), new_sg.requirements().end(),
        [&](const sg::E2eRequirement& r) { return r.id == req.id; });
    if (now == new_sg.requirements().end() || !(*now == req)) {
      dirty_reqs.insert(req.id);
    }
  }

  // --- 2. remove affected services from the RO.
  std::set<std::string> freed_elements;
  for (auto it = services_.begin(); it != services_.end();) {
    ClientService& service = it->second;
    const bool affected =
        std::any_of(service.nf_ids.begin(), service.nf_ids.end(),
                    [&](const std::string& id) {
                      return dirty_nfs.count(id) != 0;
                    }) ||
        std::any_of(service.link_ids.begin(), service.link_ids.end(),
                    [&](const std::string& id) {
                      return dirty_links.count(id) != 0;
                    }) ||
        std::any_of(service.req_ids.begin(), service.req_ids.end(),
                    [&](const std::string& id) {
                      return dirty_reqs.count(id) != 0;
                    });
    if (!affected) {
      ++it;
      continue;
    }
    if (const auto removed = ro_->remove(service.ro_request);
        !removed.ok() &&
        ro_->deployments().count(service.ro_request) != 0) {
      // The deployment survived (removal really did not happen): bail out
      // with books intact so the whole edit can be retried.
      return removed.error();
    }
    // Removal is committed in the RO's books even when its southbound push
    // failed (the RO re-pushes the full slice on the next fan-out, and a
    // persistently failing domain trips the circuit breaker) — and a
    // kNotFound means it was already gone. Treating either as removed
    // keeps this virtualizer's books aligned with the RO instead of
    // wedging every future edit on a phantom service.
    freed_elements.insert(service.nf_ids.begin(), service.nf_ids.end());
    freed_elements.insert(service.link_ids.begin(), service.link_ids.end());
    it = services_.erase(it);
  }

  // --- 3. pool of elements needing (re)deployment: everything in the new
  // config not owned by a surviving service.
  std::set<std::string> owned;
  std::set<std::string> owned_reqs;
  for (const auto& [id, service] : services_) {
    owned.insert(service.nf_ids.begin(), service.nf_ids.end());
    owned.insert(service.link_ids.begin(), service.link_ids.end());
    owned_reqs.insert(service.req_ids.begin(), service.req_ids.end());
  }
  std::vector<const sg::SgLink*> pool_links;
  std::set<std::string> pool_nfs;
  for (const sg::SgLink& link : new_sg.links()) {
    if (owned.count(link.id) == 0) pool_links.push_back(&link);
  }
  for (const auto& [nf_id, nf] : new_sg.nfs()) {
    if (owned.count(nf_id) == 0) pool_nfs.insert(nf_id);
  }

  // --- 4. group the pool into connected components (links join their NF
  // endpoints; SAPs are shared infrastructure and do not merge services).
  std::map<std::string, int> component_of;  // nf -> component
  int next_component = 0;
  for (const std::string& nf : pool_nfs) {
    component_of[nf] = next_component++;
  }
  const auto find_root = [&](int c) {
    return c;  // components merged eagerly below; no union-find needed
  };
  (void)find_root;
  // Merge components via links (simple iterate-to-fixpoint; pools are
  // small).
  bool changed = true;
  while (changed) {
    changed = false;
    for (const sg::SgLink* link : pool_links) {
      const bool from_nf = component_of.count(link->from.node) != 0;
      const bool to_nf = component_of.count(link->to.node) != 0;
      if (from_nf && to_nf &&
          component_of[link->from.node] != component_of[link->to.node]) {
        const int victim = component_of[link->to.node];
        const int winner = component_of[link->from.node];
        for (auto& [nf, c] : component_of) {
          if (c == victim) c = winner;
        }
        changed = true;
      }
    }
  }
  // Links -> owning component (via an NF endpoint; SAP-SAP links get their
  // own singleton component).
  std::map<int, std::vector<const sg::SgLink*>> links_by_component;
  for (const sg::SgLink* link : pool_links) {
    int component = -1;
    if (component_of.count(link->from.node) != 0) {
      component = component_of[link->from.node];
    } else if (component_of.count(link->to.node) != 0) {
      component = component_of[link->to.node];
    } else {
      component = next_component++;
    }
    links_by_component[component].push_back(link);
  }
  // NFs with no links still need a component entry so validation flags
  // them at deploy time.
  std::map<int, std::vector<std::string>> nfs_by_component;
  for (const auto& [nf, component] : component_of) {
    nfs_by_component[component].push_back(nf);
  }

  // --- 5. deploy every component as one service. Components are built
  // first and then handed to the RO as one wave: map_batch embeds them in
  // parallel on the shared pool and commits sequentially in component
  // order, so the result is identical to the old per-component deploy loop
  // while the expensive mapping phase overlaps.
  std::set<int> components;
  for (const auto& [c, links] : links_by_component) components.insert(c);
  for (const auto& [c, nfs] : nfs_by_component) components.insert(c);
  std::vector<sg::ServiceGraph> subs;
  std::vector<ClientService> sub_services;
  // Request numbers appear in installed flowrule ids and steering tags, so
  // numbers consumed by components that end up NOT deployed must be
  // recycled: a client that retries after a failed edit (the service
  // layer's batch fallback does exactly that) has to produce the same data
  // plane as one that never attempted the failed edit.
  const int first_request = next_request_;
  for (const int component : components) {
    sg::ServiceGraph sub{ro_->name() + "-r" + std::to_string(next_request_)};
    ClientService service;
    std::set<std::string> sub_saps;
    for (const std::string& nf_id : nfs_by_component[component]) {
      const sg::SgNf* nf = new_sg.find_nf(nf_id);
      UNIFY_RETURN_IF_ERROR(sub.add_nf(*nf));
      service.nf_ids.insert(nf_id);
    }
    for (const sg::SgLink* link : links_by_component[component]) {
      for (const model::PortRef* ref : {&link->from, &link->to}) {
        if (new_sg.has_sap(ref->node) && sub_saps.insert(ref->node).second) {
          UNIFY_RETURN_IF_ERROR(sub.add_sap(ref->node));
        }
      }
      UNIFY_RETURN_IF_ERROR(sub.add_link(*link));
      service.link_ids.insert(link->id);
    }
    for (const sg::PlacementConstraint& c : new_sg.constraints()) {
      if (service.nf_ids.count(c.nf_a) != 0 ||
          (!c.nf_b.empty() && service.nf_ids.count(c.nf_b) != 0)) {
        UNIFY_RETURN_IF_ERROR(sub.add_constraint(c));
      }
    }
    for (const sg::E2eRequirement& req : new_sg.requirements()) {
      // A requirement belongs to this component when it is not owned by a
      // surviving service, both its SAPs are here, and the component
      // actually realizes a directed chain between them (several services
      // may share the same SAP pair).
      if (owned_reqs.count(req.id) == 0 &&
          sub_saps.count(req.from_sap) != 0 &&
          sub_saps.count(req.to_sap) != 0 && sub.chain_for(req).ok()) {
        UNIFY_RETURN_IF_ERROR(sub.add_requirement(req));
        service.req_ids.insert(req.id);
      }
    }
    service.ro_request = sub.id();
    ++next_request_;
    subs.push_back(std::move(sub));
    sub_services.push_back(std::move(service));
  }

  if (policy_ == ViewPolicy::kFull) {
    // Pinned deployments carry the client's placements; no batch API (the
    // client already did the expensive embedding), deploy sequentially.
    for (std::size_t i = 0; i < subs.size(); ++i) {
      const auto pinned = ro_->deploy_pinned(subs[i], incoming.pinned_hosts);
      if (!pinned.ok()) {
        next_request_ = first_request + static_cast<int>(i);
        return pinned.error();
      }
      services_.emplace(sub_services[i].ro_request,
                        std::move(sub_services[i]));
    }
  } else if (subs.size() == 1) {
    const auto deployed = ro_->deploy(subs[0]);
    if (!deployed.ok()) {
      next_request_ = first_request;
      return deployed.error();
    }
    services_.emplace(sub_services[0].ro_request, std::move(sub_services[0]));
  } else if (!subs.empty()) {
    const std::vector<Result<std::string>> deployed = ro_->map_batch(subs);
    std::optional<Error> first_failure;
    for (std::size_t i = 0; i < deployed.size(); ++i) {
      if (deployed[i].ok()) continue;
      first_failure = deployed[i].error();
      break;
    }
    if (first_failure.has_value()) {
      // edit-config is all-or-nothing over its wave of new services: undo
      // the components that did deploy, then report the first failure.
      for (std::size_t i = 0; i < deployed.size(); ++i) {
        if (deployed[i].ok()) (void)ro_->remove(*deployed[i]);
      }
      next_request_ = first_request;
      return *first_failure;
    }
    for (std::size_t i = 0; i < subs.size(); ++i) {
      services_.emplace(sub_services[i].ro_request,
                        std::move(sub_services[i]));
    }
  }

  accepted_ = desired;
  accepted_hash_ = model::content_hash(accepted_);
  accepted_translated_ = std::move(incoming);
  UNIFY_LOG(kInfo, "orch.virt")
      << ro_->name() << ": edit-config accepted (" << services_.size()
      << " active services)";
  return Result<void>::success();
}

}  // namespace unify::core
