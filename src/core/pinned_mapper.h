// Mapper honouring placements decided by an upper layer: every NF comes
// with its host fixed (a full-view client did the embedding); only the
// chain links are routed. This is the "embedding pulled upward" half of
// the view-policy trade-off (DESIGN.md §6.2).
#pragma once

#include <map>
#include <string>

#include "mapping/mapper.h"

namespace unify::core {

class PinnedMapper final : public mapping::Mapper {
 public:
  explicit PinnedMapper(std::map<std::string, std::string> pins)
      : pins_(std::move(pins)) {}

  [[nodiscard]] std::string name() const override { return "pinned"; }
  [[nodiscard]] Result<mapping::Mapping> map(
      const sg::ServiceGraph& sg, const mapping::SubstrateView& substrate,
      const catalog::NfCatalog& catalog) const override;

 private:
  std::map<std::string, std::string> pins_;
};

}  // namespace unify::core
