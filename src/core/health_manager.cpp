#include "core/health_manager.h"

#include <algorithm>
#include <utility>

#include "util/log.h"

namespace unify::core {
namespace {

bool is_transient(ErrorCode code) noexcept {
  return code == ErrorCode::kUnavailable || code == ErrorCode::kTimeout;
}

}  // namespace

const char* to_string(DomainHealth health) noexcept {
  switch (health) {
    case DomainHealth::kHealthy:
      return "healthy";
    case DomainHealth::kDegraded:
      return "degraded";
    case DomainHealth::kDown:
      return "down";
    case DomainHealth::kProbing:
      return "probing";
  }
  return "unknown";
}

void HealthManager::reset(HealthPolicy policy, std::vector<std::string> domains) {
  policy_ = policy;
  records_.clear();
  records_.reserve(domains.size());
  for (auto& domain : domains) {
    DomainRecord record;
    record.domain = std::move(domain);
    records_.push_back(std::move(record));
  }
}

bool HealthManager::record_failure(std::size_t index, const Error& error) {
  if (index >= records_.size()) return false;
  auto& rec = records_[index];
  rec.generation += 1;
  rec.failures_total += 1;
  rec.last_error = error.to_string();
  // An open circuit already excludes the domain; stray observations from a
  // heal probe or a racing fetch must not double-count.
  if (rec.health == DomainHealth::kDown || rec.health == DomainHealth::kProbing) {
    return false;
  }
  if (!is_transient(error.code)) {
    // The domain answered (with a rejection): it is alive.
    rec.consecutive_failures = 0;
    return false;
  }
  rec.consecutive_failures += 1;
  escalate_backoff(rec);
  if (!policy_.enabled) return false;
  if (rec.consecutive_failures >= policy_.failure_threshold) {
    return open_circuit(index, error.to_string());
  }
  if (rec.consecutive_failures >= policy_.degrade_after) {
    rec.health = DomainHealth::kDegraded;
  }
  return false;
}

void HealthManager::record_success(std::size_t index) {
  if (index >= records_.size()) return;
  auto& rec = records_[index];
  rec.generation += 1;
  if (rec.health == DomainHealth::kDown || rec.health == DomainHealth::kProbing) {
    // Readmission goes through close_circuit() so the orchestrator can
    // unmask capacity and resync first; a bare success can't short it.
    return;
  }
  rec.consecutive_failures = 0;
  rec.health = DomainHealth::kHealthy;
  rec.probe_cooldown = 0;
  rec.probe_backoff = 0;
}

bool HealthManager::open_circuit(std::size_t index, const std::string& reason) {
  if (index >= records_.size()) return false;
  auto& rec = records_[index];
  if (rec.health == DomainHealth::kDown || rec.health == DomainHealth::kProbing) {
    return false;
  }
  rec.generation += 1;
  rec.health = DomainHealth::kDown;
  rec.circuit_opens += 1;
  rec.last_error = reason;
  UNIFY_LOG(kWarn, "core.health")
      << "circuit open for domain '" << rec.domain << "': " << reason;
  return true;
}

void HealthManager::begin_probe(std::size_t index) {
  if (index >= records_.size()) return;
  auto& rec = records_[index];
  if (rec.health != DomainHealth::kDown) return;
  rec.generation += 1;
  rec.health = DomainHealth::kProbing;
  rec.probes += 1;
}

void HealthManager::probe_failed(std::size_t index, const Error& error) {
  if (index >= records_.size()) return;
  auto& rec = records_[index];
  if (rec.health != DomainHealth::kProbing) return;
  rec.generation += 1;
  rec.health = DomainHealth::kDown;
  rec.probe_failures += 1;
  rec.failures_total += 1;
  rec.last_error = error.to_string();
  escalate_backoff(rec);
}

void HealthManager::close_circuit(std::size_t index) {
  if (index >= records_.size()) return;
  auto& rec = records_[index];
  rec.generation += 1;
  rec.health = DomainHealth::kHealthy;
  rec.consecutive_failures = 0;
  rec.probe_cooldown = 0;
  rec.probe_backoff = 0;
  UNIFY_LOG(kInfo, "core.health")
      << "circuit closed for domain '" << rec.domain << "'";
}

bool HealthManager::should_probe(std::size_t index) {
  if (index >= records_.size()) return true;
  if (policy_.probe_backoff_initial <= 0) return true;
  auto& rec = records_[index];
  if (rec.probe_cooldown > 0) {
    rec.probe_cooldown -= 1;
    return false;
  }
  return true;
}

void HealthManager::escalate_backoff(DomainRecord& rec) {
  if (policy_.probe_backoff_initial <= 0) return;
  rec.probe_backoff =
      rec.probe_backoff == 0
          ? policy_.probe_backoff_initial
          : std::min(policy_.probe_backoff_cap,
                     static_cast<int>(static_cast<double>(rec.probe_backoff) *
                                      policy_.probe_backoff_multiplier));
  rec.probe_cooldown = rec.probe_backoff;
}

bool HealthManager::admits(std::size_t index) const noexcept {
  if (index >= records_.size()) return true;
  const auto health = records_[index].health;
  return health != DomainHealth::kDown && health != DomainHealth::kProbing;
}

DomainHealth HealthManager::health(std::size_t index) const noexcept {
  if (index >= records_.size()) return DomainHealth::kHealthy;
  return records_[index].health;
}

double HealthManager::penalty(std::size_t index) const noexcept {
  if (index >= records_.size()) return 0.0;
  const auto& rec = records_[index];
  switch (rec.health) {
    case DomainHealth::kHealthy:
      return 0.0;
    case DomainHealth::kDegraded:
      // A non-transient failure resets the streak but leaves the domain
      // degraded; max(1, streak) keeps the penalty nonzero until a clean
      // success actually restores it to healthy.
      return policy_.penalty_per_failure *
             static_cast<double>(std::max(1, rec.consecutive_failures));
    case DomainHealth::kProbing:
      return policy_.probing_penalty;
    case DomainHealth::kDown:
      return policy_.down_penalty;
  }
  return 0.0;
}

const HealthManager::DomainRecord& HealthManager::record(std::size_t index) const {
  return records_.at(index);
}

std::vector<std::size_t> HealthManager::open_circuits() const {
  std::vector<std::size_t> open;
  for (std::size_t i = 0; i < records_.size(); ++i) {
    if (!admits(i)) open.push_back(i);
  }
  return open;
}

bool HealthManager::any_open() const noexcept {
  for (std::size_t i = 0; i < records_.size(); ++i) {
    if (!admits(i)) return true;
  }
  return false;
}

bool HealthManager::any_unhealthy() const noexcept {
  for (const DomainRecord& rec : records_) {
    if (rec.health != DomainHealth::kHealthy) return true;
  }
  return false;
}

std::uint64_t HealthManager::state_fingerprint() const noexcept {
  // FNV-1a over the state sequence: position-sensitive, and all-healthy
  // always maps to the same value so callers can cache "nothing wrong".
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const DomainRecord& rec : records_) {
    h ^= static_cast<std::uint64_t>(rec.health);
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace unify::core
