#include "core/resource_orchestrator.h"

#include <optional>

#include "util/log.h"
#include "util/orchestration_pool.h"

namespace unify::core {

util::OrchestrationPool& ResourceOrchestrator::pool() const noexcept {
  return options_.pool != nullptr ? *options_.pool
                                  : util::OrchestrationPool::process_pool();
}

ResourceOrchestrator::ResourceOrchestrator(
    std::string name, std::shared_ptr<const mapping::Mapper> mapper,
    catalog::NfCatalog catalog, RoOptions options)
    : name_(std::move(name)),
      mapper_(std::move(mapper)),
      catalog_(std::move(catalog)),
      options_(options) {}

Result<void> ResourceOrchestrator::add_domain(
    std::unique_ptr<adapters::DomainAdapter> adapter) {
  if (initialized_) {
    return Error{ErrorCode::kInvalidArgument,
                 "domains must be added before initialize()"};
  }
  for (const auto& existing : adapters_) {
    if (existing->domain() == adapter->domain()) {
      return Error{ErrorCode::kAlreadyExists,
                   "domain " + adapter->domain()};
    }
  }
  domain_names_.push_back(adapter->domain());
  adapters_.push_back(std::move(adapter));
  return Result<void>::success();
}

Result<void> ResourceOrchestrator::initialize() {
  if (initialized_) {
    return Error{ErrorCode::kAlreadyExists, "RO already initialized"};
  }
  if (adapters_.empty()) {
    return Error{ErrorCode::kInvalidArgument, "RO has no domains"};
  }
  std::vector<model::DomainView> views;
  for (const auto& adapter : adapters_) {
    UNIFY_ASSIGN_OR_RETURN(model::Nffg view, adapter->fetch_view());
    views.push_back(model::DomainView{adapter->domain(), std::move(view)});
  }
  UNIFY_ASSIGN_OR_RETURN(view_, model::merge_views(views));
  view_.set_id(name_ + "-global-view");
  initialized_ = true;
  UNIFY_LOG(kInfo, "orch.ro")
      << name_ << ": merged " << adapters_.size() << " domains into "
      << view_.bisbis().size() << " BiS-BiS nodes";
  return Result<void>::success();
}

Result<void> ResourceOrchestrator::admit(
    const sg::ServiceGraph& request) const {
  if (!initialized_) {
    return Error{ErrorCode::kUnavailable, "RO not initialized"};
  }
  if (request.id().empty()) {
    return Error{ErrorCode::kInvalidArgument, "service graph needs an id"};
  }
  if (deployments_.count(request.id()) != 0) {
    return Error{ErrorCode::kAlreadyExists, "request " + request.id()};
  }
  if (const auto problems = request.validate(); !problems.empty()) {
    return Error{ErrorCode::kInvalidArgument,
                 "invalid service graph: " + problems.front()};
  }
  // NF instance ids live in a flat substrate namespace; reject collisions
  // with live deployments up front (callers namespace per request, as the
  // service layer does).
  for (const auto& [nf_id, nf] : request.nfs()) {
    if (view_.find_nf(nf_id).has_value()) {
      return Error{ErrorCode::kAlreadyExists,
                   "NF id " + nf_id + " already deployed"};
    }
  }
  return Result<void>::success();
}

Result<ResourceOrchestrator::Deployment> ResourceOrchestrator::prepare(
    const sg::ServiceGraph& request, const model::Nffg& view,
    PrepareStats& stats) const {
  // Map (with decomposition when enabled).
  Deployment deployment;
  deployment.request_id = request.id();
  deployment.original = request;
  if (options_.use_decomposition) {
    mapping::DecompAwareMapper decomp(mapper_,
                                      options_.max_decomposition_combinations);
    UNIFY_ASSIGN_OR_RETURN(mapping::DecompResult result,
                           decomp.map_with_decomposition(request, view,
                                                         catalog_));
    deployment.expanded = std::move(result.expanded);
    deployment.mapping = std::move(result.mapping);
    stats.decomposition_combinations = result.combinations_tried;
  } else {
    sg::ServiceGraph expanded = request;
    UNIFY_ASSIGN_OR_RETURN(const std::size_t applied,
                           catalog::expand_all(expanded, catalog_));
    stats.pre_expansions = applied;
    UNIFY_ASSIGN_OR_RETURN(mapping::Mapping mapping,
                           mapper_->map(expanded, view, catalog_));
    deployment.expanded = std::move(expanded);
    deployment.mapping = std::move(mapping);
  }
  return deployment;
}

Result<std::string> ResourceOrchestrator::deploy(
    const sg::ServiceGraph& request) {
  UNIFY_RETURN_IF_ERROR(admit(request));
  PrepareStats stats;
  UNIFY_ASSIGN_OR_RETURN(Deployment deployment,
                         prepare(request, view_, stats));
  if (options_.use_decomposition) {
    metrics_.add("ro.decomposition_combinations",
                 stats.decomposition_combinations);
  } else {
    metrics_.add("ro.pre_expansions", stats.pre_expansions);
  }
  return commit(std::move(deployment));
}

std::vector<Result<std::string>> ResourceOrchestrator::map_batch(
    const std::vector<sg::ServiceGraph>& requests, std::size_t workers) {
  std::vector<Result<std::string>> results;
  results.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    results.emplace_back(Error{ErrorCode::kInternal, "request not processed"});
  }
  if (requests.empty()) return results;

  // Speculative phase: map every admissible request against the current
  // view in parallel on the shared pool. Workers only read view_/catalog_
  // (the mappers copy the substrate into private Contexts) and write
  // disjoint slots, so the only synchronization needed is the batch join.
  std::vector<std::optional<Result<Deployment>>> prepared(requests.size());
  std::vector<PrepareStats> stats(requests.size());
  std::vector<std::function<void()>> tasks;
  tasks.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (const auto admitted = admit(requests[i]); !admitted.ok()) {
      results[i] = admitted.error();
      continue;
    }
    tasks.push_back([this, &requests, &prepared, &stats, i] {
      prepared[i] = prepare(requests[i], view_, stats[i]);
    });
  }
  const std::size_t pool_size = pool().run_all(std::move(tasks), workers);

  // Commit phase: strictly sequential, in request order. Earlier commits
  // change the view, so each speculative mapping is re-validated and
  // re-mapped on conflict (optimistic concurrency).
  telemetry::Registry batch_metrics;
  batch_metrics.add("ro.batch_requests", requests.size());
  batch_metrics.set_gauge("ro.batch_workers",
                          static_cast<double>(pool_size));
  batch_metrics.set_gauge("ro.batch_pool_workers",
                          static_cast<double>(pool().workers()));
  batch_metrics.set_gauge("ro.batch_pools_constructed",
                          static_cast<double>(
                              util::OrchestrationPool::constructed()));
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (!prepared[i].has_value()) continue;  // rejected by admit()
    // Earlier commits may have taken this request id or its NF ids.
    if (const auto admitted = admit(requests[i]); !admitted.ok()) {
      results[i] = admitted.error();
      continue;
    }
    Result<Deployment> outcome = std::move(*prepared[i]);
    if (outcome.ok() &&
        !mapping::verify_mapping(outcome->expanded, view_, catalog_,
                                 outcome->mapping)
             .ok()) {
      // A previous commit consumed resources the speculative mapping
      // relies on; re-map against the current view.
      batch_metrics.add("ro.batch_conflicts");
      outcome = prepare(requests[i], view_, stats[i]);
      if (outcome.ok()) batch_metrics.add("ro.batch_remaps");
    }
    if (!outcome.ok()) {
      results[i] = outcome.error();
      continue;
    }
    if (options_.use_decomposition) {
      batch_metrics.add("ro.decomposition_combinations",
                        stats[i].decomposition_combinations);
    } else {
      batch_metrics.add("ro.pre_expansions", stats[i].pre_expansions);
    }
    results[i] = commit(std::move(outcome).value());
  }
  metrics_.merge(batch_metrics);
  return results;
}

Result<std::string> ResourceOrchestrator::deploy_pinned(
    const sg::ServiceGraph& request,
    const std::map<std::string, std::string>& pins) {
  if (!initialized_) {
    return Error{ErrorCode::kUnavailable, "RO not initialized"};
  }
  if (request.id().empty() || deployments_.count(request.id()) != 0) {
    return Error{ErrorCode::kInvalidArgument,
                 "bad or duplicate request id " + request.id()};
  }
  Deployment deployment;
  deployment.request_id = request.id();
  deployment.original = request;
  deployment.expanded = request;
  const PinnedMapper pinned(pins);
  UNIFY_ASSIGN_OR_RETURN(deployment.mapping,
                         pinned.map(request, view_, catalog_));
  return commit(std::move(deployment));
}

Result<std::string> ResourceOrchestrator::commit(Deployment deployment) {
  // Materialize into the global view, then push per-domain slices.
  UNIFY_RETURN_IF_ERROR(mapping::install_mapping(
      view_, deployment.expanded, catalog_, deployment.mapping));
  metrics_.add("ro.deployments");
  metrics_.summary("ro.nfs_per_request")
      .observe(static_cast<double>(deployment.mapping.stats.nfs_placed));
  const std::string id = deployment.request_id;
  const auto it = deployments_.emplace(id, std::move(deployment)).first;
  if (const auto pushed = push_slices(); !pushed.ok()) {
    // Roll the whole deployment back: release the view's resources, then
    // re-push so domains that already accepted their slice converge back.
    (void)mapping::uninstall_mapping(view_, it->second.expanded,
                                     it->second.mapping);
    deployments_.erase(it);
    if (const auto repush = push_slices(); !repush.ok()) {
      UNIFY_LOG(kError, "orch.ro")
          << name_ << ": rollback push failed: "
          << repush.error().to_string();
    }
    return Error{pushed.error().code,
                 "deployment " + id + " rolled back: " +
                     pushed.error().message};
  }
  UNIFY_LOG(kInfo, "orch.ro") << name_ << ": deployed " << id;
  return id;
}

Result<void> ResourceOrchestrator::remove(const std::string& request_id) {
  const auto it = deployments_.find(request_id);
  if (it == deployments_.end()) {
    return Error{ErrorCode::kNotFound, "request " + request_id};
  }
  UNIFY_RETURN_IF_ERROR(mapping::uninstall_mapping(view_, it->second.expanded,
                                                   it->second.mapping));
  deployments_.erase(it);
  UNIFY_RETURN_IF_ERROR(push_slices());
  metrics_.add("ro.removals");
  return Result<void>::success();
}

Result<void> ResourceOrchestrator::redeploy(const std::string& request_id) {
  const auto it = deployments_.find(request_id);
  if (it == deployments_.end()) {
    return Error{ErrorCode::kNotFound, "request " + request_id};
  }
  const Deployment previous = it->second;
  // Free the old placement, remap the original request on what remains.
  UNIFY_RETURN_IF_ERROR(mapping::uninstall_mapping(view_, previous.expanded,
                                                   previous.mapping));
  deployments_.erase(it);
  auto redone = deploy(previous.original);
  if (!redone.ok()) {
    // No slice has been pushed (the failure was in mapping), so the old
    // placement is still physically running; re-record it in the view.
    // Forced install: the advertised capacity may have shrunk below what
    // the running NFs consume, which is exactly the situation migration
    // exists to resolve.
    if (const auto back = mapping::install_mapping(
            view_, previous.expanded, catalog_, previous.mapping,
            /*force_placement=*/true);
        !back.ok()) {
      return Error{ErrorCode::kInternal,
                   "redeploy failed AND restore failed: " +
                       back.error().to_string() +
                       " (original failure: " + redone.error().to_string() +
                       ")"};
    }
    deployments_.emplace(request_id, previous);
    return Error{redone.error().code,
                 "redeploy of " + request_id +
                     " failed, previous placement restored: " +
                     redone.error().message};
  }
  metrics_.add("ro.redeploys");
  return push_slices();
}

Result<void> ResourceOrchestrator::refresh_domain(const std::string& domain) {
  for (const auto& adapter : adapters_) {
    if (adapter->domain() != domain) continue;
    UNIFY_ASSIGN_OR_RETURN(const model::Nffg fresh, adapter->fetch_view());
    for (const auto& [bb_id, bb] : fresh.bisbis()) {
      model::BisBis* mine = view_.find_bisbis(bb_id);
      if (mine == nullptr) {
        return Error{ErrorCode::kInvalidArgument,
                     "domain " + domain + " advertised new BiS-BiS " + bb_id +
                         "; topology changes require re-initialization"};
      }
      mine->capacity = bb.capacity;
      mine->nf_types = bb.nf_types;
      mine->internal_delay = bb.internal_delay;
    }
    metrics_.add("ro.domain_refreshes");
    return Result<void>::success();
  }
  return Error{ErrorCode::kNotFound, "domain " + domain};
}

Result<void> ResourceOrchestrator::push_slices() {
  for (const auto& adapter : adapters_) {
    const model::Nffg slice =
        model::slice_for_domain(view_, adapter->domain());
    UNIFY_RETURN_IF_ERROR(adapter->apply(slice));
    metrics_.add("ro.slice_pushes");
  }
  return Result<void>::success();
}

Result<void> ResourceOrchestrator::sync_statuses() {
  for (const auto& adapter : adapters_) {
    UNIFY_ASSIGN_OR_RETURN(const model::Nffg domain_view,
                           adapter->fetch_view());
    for (const auto& [bb_id, bb] : domain_view.bisbis()) {
      model::BisBis* mine = view_.find_bisbis(bb_id);
      if (mine == nullptr) continue;
      for (const auto& [nf_id, nf] : bb.nfs) {
        const auto it = mine->nfs.find(nf_id);
        if (it != mine->nfs.end()) it->second.status = nf.status;
      }
    }
  }
  return Result<void>::success();
}

std::optional<model::NfStatus> ResourceOrchestrator::nf_status(
    const std::string& nf_id) const {
  const auto found = view_.find_nf(nf_id);
  if (!found.has_value()) return std::nullopt;
  return found->second->status;
}

}  // namespace unify::core
