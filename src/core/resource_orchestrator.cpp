#include "core/resource_orchestrator.h"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <optional>
#include <set>
#include <thread>
#include <utility>

#include "model/nffg_hash.h"
#include "model/nffg_json.h"
#include "util/log.h"
#include "util/orchestration_pool.h"

namespace unify::core {

util::OrchestrationPool& ResourceOrchestrator::pool() const noexcept {
  return options_.pool != nullptr ? *options_.pool
                                  : util::OrchestrationPool::process_pool();
}

ResourceOrchestrator::ResourceOrchestrator(
    std::string name, std::shared_ptr<const mapping::Mapper> mapper,
    catalog::NfCatalog catalog, RoOptions options)
    : name_(std::move(name)),
      mapper_(std::move(mapper)),
      catalog_(std::move(catalog)),
      options_(options) {
  if (options_.race_portfolio) {
    // The injected mapper races as lane 0; standard racers sharing its name
    // are dropped so per-racer stats stay keyed unambiguously.
    std::vector<std::shared_ptr<const mapping::Mapper>> racers;
    if (mapper_ != nullptr) racers.push_back(mapper_);
    for (auto& racer : mapping::PortfolioMapper::standard_racers()) {
      if (mapper_ == nullptr || racer->name() != mapper_->name()) {
        racers.push_back(std::move(racer));
      }
    }
    mapping::PortfolioOptions portfolio_options;
    portfolio_options.deadline_us = options_.portfolio_deadline_us;
    portfolio_options.pool = options_.pool;
    portfolio_ = std::make_shared<mapping::PortfolioMapper>(
        std::move(racers), portfolio_options);
    mapper_ = portfolio_;
  }
}

void ResourceOrchestrator::drain_portfolio_metrics() {
  if (portfolio_ != nullptr) portfolio_->drain_metrics(metrics_);
}

Result<void> ResourceOrchestrator::add_domain(
    std::unique_ptr<adapters::DomainAdapter> adapter) {
  if (initialized_) {
    return Error{ErrorCode::kInvalidArgument,
                 "domains must be added before initialize()"};
  }
  for (const auto& existing : adapters_) {
    if (existing->domain() == adapter->domain()) {
      return Error{ErrorCode::kAlreadyExists,
                   "domain " + adapter->domain()};
    }
  }
  domain_names_.push_back(adapter->domain());
  adapters_.push_back(std::move(adapter));
  return Result<void>::success();
}

Result<void> ResourceOrchestrator::initialize() {
  if (initialized_) {
    return Error{ErrorCode::kAlreadyExists, "RO already initialized"};
  }
  if (adapters_.empty()) {
    return Error{ErrorCode::kInvalidArgument, "RO has no domains"};
  }
  // All domain views are fetched concurrently (the merge itself stays on
  // the caller thread); domain order in the merge is preserved, so the
  // result is identical to the old sequential loop.
  std::vector<Result<model::Nffg>> fetched = fetch_views_parallel();
  MultiError failures;
  std::vector<model::DomainView> views;
  views.reserve(adapters_.size());
  for (std::size_t i = 0; i < adapters_.size(); ++i) {
    if (!fetched[i].ok()) {
      failures.add(adapters_[i]->domain(), fetched[i].error());
      continue;
    }
    views.push_back(model::DomainView{adapters_[i]->domain(),
                                      std::move(fetched[i]).value()});
  }
  if (!failures.empty()) return failures.to_error();
  UNIFY_ASSIGN_OR_RETURN(model::Nffg merged, model::merge_views(views));
  merged.set_id(name_ + "-global-view");
  view_.reset(std::move(merged));
  push_state_.assign(adapters_.size(), DomainPushState{});
  health_.reset(options_.health, domain_names_);
  mask_ = ViewMask{};
  refresh_health_penalties();
  metrics_.set_gauge("ro.health.down_domains", 0);
  initialized_ = true;
  UNIFY_LOG(kInfo, "orch.ro")
      << name_ << ": merged " << adapters_.size() << " domains into "
      << view_.read().bisbis().size() << " BiS-BiS nodes";
  return Result<void>::success();
}

Result<void> ResourceOrchestrator::admit(
    const sg::ServiceGraph& request) const {
  if (!initialized_) {
    return Error{ErrorCode::kUnavailable, "RO not initialized"};
  }
  if (request.id().empty()) {
    return Error{ErrorCode::kInvalidArgument, "service graph needs an id"};
  }
  if (deployments_.count(request.id()) != 0) {
    return Error{ErrorCode::kAlreadyExists, "request " + request.id()};
  }
  if (const auto problems = request.validate(); !problems.empty()) {
    return Error{ErrorCode::kInvalidArgument,
                 "invalid service graph: " + problems.front()};
  }
  // NF instance ids live in a flat substrate namespace; reject collisions
  // with live deployments up front (callers namespace per request, as the
  // service layer does).
  for (const auto& [nf_id, nf] : request.nfs()) {
    if (view_.read().find_nf(nf_id).has_value()) {
      return Error{ErrorCode::kAlreadyExists,
                   "NF id " + nf_id + " already deployed"};
    }
  }
  return Result<void>::success();
}

Result<ResourceOrchestrator::Deployment> ResourceOrchestrator::prepare(
    const sg::ServiceGraph& request, const mapping::SubstrateView& view,
    PrepareStats& stats) const {
  // Map (with decomposition when enabled).
  Deployment deployment;
  deployment.request_id = request.id();
  deployment.original = request;
  if (options_.use_decomposition) {
    mapping::DecompAwareMapper decomp(mapper_,
                                      options_.max_decomposition_combinations);
    UNIFY_ASSIGN_OR_RETURN(mapping::DecompResult result,
                           decomp.map_with_decomposition(request, view,
                                                         catalog_));
    deployment.expanded = std::move(result.expanded);
    deployment.mapping = std::move(result.mapping);
    stats.decomposition_combinations = result.combinations_tried;
  } else {
    sg::ServiceGraph expanded = request;
    UNIFY_ASSIGN_OR_RETURN(const std::size_t applied,
                           catalog::expand_all(expanded, catalog_));
    stats.pre_expansions = applied;
    UNIFY_ASSIGN_OR_RETURN(mapping::Mapping mapping,
                           mapper_->map(expanded, view, catalog_));
    deployment.expanded = std::move(expanded);
    deployment.mapping = std::move(mapping);
  }
  return deployment;
}

Result<ResourceOrchestrator::Deployment> ResourceOrchestrator::prepare_current(
    const sg::ServiceGraph& request, PrepareStats& stats) const {
  const model::ViewSnapshot snap = view_.snapshot();
  return prepare(request, snap, stats);
}

Result<std::string> ResourceOrchestrator::deploy(
    const sg::ServiceGraph& request) {
  UNIFY_RETURN_IF_ERROR(admit(request));
  PrepareStats stats;
  UNIFY_ASSIGN_OR_RETURN(Deployment deployment,
                         prepare_current(request, stats));
  if (options_.use_decomposition) {
    metrics_.add("ro.decomposition_combinations",
                 stats.decomposition_combinations);
  } else {
    metrics_.add("ro.pre_expansions", stats.pre_expansions);
  }
  drain_portfolio_metrics();
  return commit(std::move(deployment));
}

std::vector<Result<std::string>> ResourceOrchestrator::map_batch(
    const std::vector<sg::ServiceGraph>& requests, std::size_t workers) {
  std::vector<Result<std::string>> results;
  results.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    results.emplace_back(Error{ErrorCode::kInternal, "request not processed"});
  }
  if (requests.empty()) return results;

  // Speculative phase: map every admissible request against one frozen
  // snapshot of the current view in parallel on the shared pool. The
  // snapshot pins the epoch and shares a single topology index across all
  // workers (no per-request substrate copies); workers write disjoint
  // slots, so the only synchronization needed is the batch join. The
  // snapshot scope ends before the commit loop, so the strictly-sequential
  // commits mutate the view in place instead of cloning it.
  std::vector<std::optional<Result<Deployment>>> prepared(requests.size());
  std::vector<PrepareStats> stats(requests.size());
  std::size_t pool_size = 0;
  {
    const model::ViewSnapshot snap = view_.snapshot();
    const mapping::SubstrateView frozen(snap);
    std::vector<std::function<void()>> tasks;
    tasks.reserve(requests.size());
    for (std::size_t i = 0; i < requests.size(); ++i) {
      if (const auto admitted = admit(requests[i]); !admitted.ok()) {
        results[i] = admitted.error();
        continue;
      }
      tasks.push_back([this, &requests, &prepared, &stats, &frozen, i] {
        prepared[i] = prepare(requests[i], frozen, stats[i]);
      });
    }
    pool_size = pool().run_all(std::move(tasks), workers);
  }

  // Commit phase: strictly sequential, in request order. Earlier commits
  // change the view, so each speculative mapping is re-validated and
  // re-mapped on conflict (optimistic concurrency).
  telemetry::Registry batch_metrics;
  batch_metrics.add("ro.batch_requests", requests.size());
  batch_metrics.set_gauge("ro.batch_workers",
                          static_cast<double>(pool_size));
  batch_metrics.set_gauge("ro.batch_pool_workers",
                          static_cast<double>(pool().workers()));
  batch_metrics.set_gauge("ro.batch_pools_constructed",
                          static_cast<double>(
                              util::OrchestrationPool::constructed()));
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (!prepared[i].has_value()) continue;  // rejected by admit()
    // Earlier commits may have taken this request id or its NF ids.
    if (const auto admitted = admit(requests[i]); !admitted.ok()) {
      results[i] = admitted.error();
      continue;
    }
    Result<Deployment> outcome = std::move(*prepared[i]);
    if (outcome.ok() &&
        !mapping::verify_mapping(outcome->expanded, view_.read(), catalog_,
                                 outcome->mapping)
             .ok()) {
      // A previous commit consumed resources the speculative mapping
      // relies on; re-map against the current view.
      batch_metrics.add("ro.batch_conflicts");
      outcome = prepare_current(requests[i], stats[i]);
      if (outcome.ok()) batch_metrics.add("ro.batch_remaps");
    }
    if (!outcome.ok()) {
      results[i] = outcome.error();
      continue;
    }
    if (options_.use_decomposition) {
      batch_metrics.add("ro.decomposition_combinations",
                        stats[i].decomposition_combinations);
    } else {
      batch_metrics.add("ro.pre_expansions", stats[i].pre_expansions);
    }
    results[i] = commit(std::move(outcome).value());
  }
  metrics_.merge(batch_metrics);
  drain_portfolio_metrics();
  return results;
}

Result<std::string> ResourceOrchestrator::deploy_pinned(
    const sg::ServiceGraph& request,
    const std::map<std::string, std::string>& pins) {
  if (!initialized_) {
    return Error{ErrorCode::kUnavailable, "RO not initialized"};
  }
  if (request.id().empty() || deployments_.count(request.id()) != 0) {
    return Error{ErrorCode::kInvalidArgument,
                 "bad or duplicate request id " + request.id()};
  }
  Deployment deployment;
  deployment.request_id = request.id();
  deployment.original = request;
  deployment.expanded = request;
  const PinnedMapper pinned(pins);
  {
    // Snapshot released before commit() so the install mutates in place.
    const model::ViewSnapshot snap = view_.snapshot();
    UNIFY_ASSIGN_OR_RETURN(deployment.mapping,
                           pinned.map(request, snap, catalog_));
  }
  return commit(std::move(deployment));
}

Result<std::string> ResourceOrchestrator::commit(Deployment deployment) {
  // Materialize into the global view (stamping the shards the mapping
  // touches so push_slices() can skip the clean ones), then push
  // per-domain slices.
  UNIFY_RETURN_IF_ERROR(mapping::install_mapping(
      view_.mut(), deployment.expanded, catalog_, deployment.mapping));
  view_.bump(touched_domains(deployment.mapping));
  deployment.sequence = next_sequence_++;
  metrics_.add("ro.deployments");
  metrics_.summary("ro.nfs_per_request")
      .observe(static_cast<double>(deployment.mapping.stats.nfs_placed));
  const std::string id = deployment.request_id;
  const auto it = deployments_.emplace(id, std::move(deployment)).first;
  if (const auto pushed = push_slices(); !pushed.ok()) {
    // Roll the whole deployment back: release the view's resources, then
    // re-push so domains that already accepted their slice converge back.
    (void)mapping::uninstall_mapping(view_.mut(), it->second.expanded,
                                     it->second.mapping);
    view_.bump(touched_domains(it->second.mapping));
    deployments_.erase(it);
    if (const auto repush = push_slices(); !repush.ok()) {
      UNIFY_LOG(kError, "orch.ro")
          << name_ << ": rollback push failed: "
          << repush.error().to_string();
    }
    return Error{pushed.error().code,
                 "deployment " + id + " rolled back: " +
                     pushed.error().message};
  }
  UNIFY_LOG(kInfo, "orch.ro") << name_ << ": deployed " << id;
  return id;
}

Result<void> ResourceOrchestrator::remove(const std::string& request_id) {
  const auto it = deployments_.find(request_id);
  if (it == deployments_.end()) {
    return Error{ErrorCode::kNotFound, "request " + request_id};
  }
  UNIFY_RETURN_IF_ERROR(mapping::uninstall_mapping(
      view_.mut(), it->second.expanded, it->second.mapping));
  view_.bump(touched_domains(it->second.mapping));
  deployments_.erase(it);
  UNIFY_RETURN_IF_ERROR(push_slices());
  metrics_.add("ro.removals");
  return Result<void>::success();
}

Result<void> ResourceOrchestrator::redeploy(const std::string& request_id) {
  const auto it = deployments_.find(request_id);
  if (it == deployments_.end()) {
    return Error{ErrorCode::kNotFound, "request " + request_id};
  }
  const Deployment previous = it->second;
  // Free the old placement, remap the original request on what remains.
  UNIFY_RETURN_IF_ERROR(mapping::uninstall_mapping(
      view_.mut(), previous.expanded, previous.mapping));
  view_.bump(touched_domains(previous.mapping));
  deployments_.erase(it);
  auto redone = deploy(previous.original);
  if (!redone.ok()) {
    // No slice has been pushed (the failure was in mapping), so the old
    // placement is still physically running; re-record it in the view.
    // Forced install: the advertised capacity may have shrunk below what
    // the running NFs consume, which is exactly the situation migration
    // exists to resolve.
    if (const auto back = mapping::install_mapping(
            view_.mut(), previous.expanded, catalog_, previous.mapping,
            /*force_placement=*/true);
        !back.ok()) {
      return Error{ErrorCode::kInternal,
                   "redeploy failed AND restore failed: " +
                       back.error().to_string() +
                       " (original failure: " + redone.error().to_string() +
                       ")"};
    }
    view_.bump(touched_domains(previous.mapping));
    deployments_.emplace(request_id, previous);
    return Error{redone.error().code,
                 "redeploy of " + request_id +
                     " failed, previous placement restored: " +
                     redone.error().message};
  }
  metrics_.add("ro.redeploys");
  return push_slices();
}

Result<void> ResourceOrchestrator::refresh_domain(const std::string& domain) {
  for (std::size_t i = 0; i < adapters_.size(); ++i) {
    const auto& adapter = adapters_[i];
    if (adapter->domain() != domain) continue;
    if (!health_.admits(i)) {
      return Error{ErrorCode::kUnavailable,
                   "circuit open for domain " + domain +
                       "; heal() readmits it after a successful probe"};
    }
    UNIFY_ASSIGN_OR_RETURN(const model::Nffg fresh, adapter->fetch_view());
    // internal_delay is baked into the topology index's edge weights, so a
    // refresh invalidates the cached index (mut_topology), not just data.
    model::Nffg& view = view_.mut_topology();
    for (const auto& [bb_id, bb] : fresh.bisbis()) {
      model::BisBis* mine = view.find_bisbis(bb_id);
      if (mine == nullptr) {
        return Error{ErrorCode::kInvalidArgument,
                     "domain " + domain + " advertised new BiS-BiS " + bb_id +
                         "; topology changes require re-initialization"};
      }
      mine->capacity = bb.capacity;
      mine->nf_types = bb.nf_types;
      mine->internal_delay = bb.internal_delay;
    }
    view_.bump(domain);
    metrics_.add("ro.domain_refreshes");
    return Result<void>::success();
  }
  return Error{ErrorCode::kNotFound, "domain " + domain};
}

std::vector<std::vector<std::size_t>> ResourceOrchestrator::exclusion_groups(
    const std::vector<std::size_t>& indices) const {
  std::vector<std::vector<std::size_t>> groups;
  std::vector<const void*> keys;  // index-aligned with groups
  for (const std::size_t index : indices) {
    const void* key = adapters_[index]->exclusion_key();
    if (key != nullptr) {
      bool merged = false;
      for (std::size_t g = 0; g < groups.size(); ++g) {
        if (keys[g] == key) {
          groups[g].push_back(index);
          merged = true;
          break;
        }
      }
      if (merged) continue;
    }
    groups.push_back({index});
    keys.push_back(key);
  }
  return groups;
}

void ResourceOrchestrator::push_one(std::size_t index,
                                    const model::Nffg& slice,
                                    PushOutcome& outcome) const {
  adapters::DomainAdapter& adapter = *adapters_[index];
  const int max_attempts = std::max(1, options_.push.max_attempts);
  std::int64_t backoff_us = options_.push.backoff_initial_us;
  for (int attempt = 1;; ++attempt) {
    outcome.attempts = attempt;
    auto applied = [&]() -> Result<void> {
      UNIFY_ASSIGN_OR_RETURN(const adapters::PushTicket ticket,
                             adapter.begin_apply(slice));
      return adapter.await(ticket);
    }();
    if (applied.ok()) {
      outcome.result = Result<void>::success();
      return;
    }
    const ErrorCode code = applied.error().code;
    const bool transient =
        code == ErrorCode::kUnavailable || code == ErrorCode::kTimeout;
    if (!transient || attempt >= max_attempts) {
      outcome.result = std::move(applied);
      return;
    }
    if (backoff_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
    }
    backoff_us = static_cast<std::int64_t>(
        static_cast<double>(backoff_us) * options_.push.backoff_multiplier);
  }
}

Result<void> ResourceOrchestrator::push_slices() {
  const auto wall_start = std::chrono::steady_clock::now();
  if (push_state_.size() != adapters_.size()) {
    push_state_.assign(adapters_.size(), DomainPushState{});
  }
  // Caller thread: decide dirtiness per domain against the last
  // acknowledged push, cheapest test first.
  //  1. Shard-stamp fast path: if the domain's shard stamp is unchanged
  //     since the ack (and the adapter epoch is too), no view mutation
  //     touched the domain — skip without materializing the slice. This is
  //     what keeps a million-node view from being re-sliced on every push.
  //  2. Content-hash path: the stamp moved, so cut the slice and hash it.
  //     If the hash still matches the acked one, the mutations were no-ops
  //     for this domain — skip the push and refresh the acked stamp so the
  //     fast path re-arms.
  // Either way a domain is clean only while its adapter view_epoch() is
  // unchanged (an epoch bump means the domain mutated since the ack).
  std::vector<std::optional<model::Nffg>> slices(adapters_.size());
  std::vector<std::uint64_t> slice_hash(adapters_.size(), 0);
  std::vector<std::uint64_t> slice_stamp(adapters_.size(), 0);
  std::vector<std::size_t> dirty;
  std::uint64_t skipped = 0;
  std::uint64_t gated = 0;
  for (std::size_t i = 0; i < adapters_.size(); ++i) {
    if (!health_.admits(i)) {
      // Circuit open: no retry storms against a dead domain. Its
      // push_state_ was invalidated when the circuit opened, so the slice
      // is re-pushed by the readmission resync.
      ++gated;
      continue;
    }
    DomainPushState& state = push_state_[i];
    const std::uint64_t stamp = view_.shard_stamp(domain_names_[i]);
    const std::uint64_t adapter_epoch = adapters_[i]->view_epoch();
    const bool epoch_clean =
        options_.push.skip_clean && state.valid &&
        state.acked_epoch == adapter_epoch;
    if (epoch_clean && state.acked_stamp == stamp) {
      ++skipped;
      continue;
    }
    slices[i].emplace(
        model::slice_for_domain(view_.read(), domain_names_[i]));
    slice_hash[i] = model::content_hash(*slices[i]);
    slice_stamp[i] = stamp;
    if (epoch_clean && state.acked_hash == slice_hash[i]) {
      ++skipped;
      state.acked_stamp = stamp;
      continue;
    }
    dirty.push_back(i);
  }
  metrics_.add("ro.push.skipped_clean", skipped);
  if (gated > 0) metrics_.add("ro.health.pushes_gated", gated);

  if (!dirty.empty()) {
    // Fan out: one pool task per exclusion group (adapters sharing
    // simulated machinery stay sequential within their group). Workers
    // write only their own PushOutcome slot; everything else is folded on
    // the caller thread after the join. The join is tasks-completed, so a
    // child RO reached through a UnifyClientAdapter can fan its own pushes
    // out on the same pool without deadlocking the parent.
    metrics_.add("ro.push.fanout", dirty.size());
    const auto groups = exclusion_groups(dirty);
    std::vector<PushOutcome> outcomes(adapters_.size());
    std::vector<std::function<void()>> tasks;
    tasks.reserve(groups.size());
    for (std::size_t g = 0; g < groups.size(); ++g) {
      tasks.push_back([this, &groups, &slices, &outcomes, g] {
        for (const std::size_t index : groups[g]) {
          push_one(index, *slices[index], outcomes[index]);
        }
      });
    }
    pool().run_all(std::move(tasks), options_.push.parallelism);

    MultiError failures;
    std::uint64_t retries = 0;
    for (const std::size_t i : dirty) {
      const PushOutcome& outcome = outcomes[i];
      if (outcome.attempts > 1) {
        retries += static_cast<std::uint64_t>(outcome.attempts - 1);
      }
      if (outcome.result.ok()) {
        push_state_[i] = DomainPushState{slice_hash[i], slice_stamp[i],
                                         adapters_[i]->view_epoch(), true};
        metrics_.add("ro.slice_pushes");
      } else {
        // Unknown domain state (a failed apply may have landed partially):
        // never consider it clean until a push succeeds.
        push_state_[i].valid = false;
        failures.add(adapters_[i]->domain(), outcome.result.error());
      }
      note_southbound_outcome(i, outcome.result);
    }
    if (retries > 0) metrics_.add("ro.push.retries", retries);
    const auto wall = std::chrono::steady_clock::now() - wall_start;
    metrics_.summary("ro.push.wall_ms")
        .observe(std::chrono::duration<double, std::milli>(wall).count());
    if (!failures.empty()) {
      metrics_.add("ro.push.partial_failures", failures.size());
      UNIFY_LOG(kWarn, "orch.ro")
          << name_ << ": " << failures.size() << "/" << dirty.size()
          << " domain pushes failed";
      return failures.to_error();
    }
    return Result<void>::success();
  }
  const auto wall = std::chrono::steady_clock::now() - wall_start;
  metrics_.summary("ro.push.wall_ms")
      .observe(std::chrono::duration<double, std::milli>(wall).count());
  return Result<void>::success();
}

std::vector<Result<model::Nffg>> ResourceOrchestrator::fetch_views_parallel() {
  std::vector<Result<model::Nffg>> results;
  results.reserve(adapters_.size());
  for (std::size_t i = 0; i < adapters_.size(); ++i) {
    results.emplace_back(
        Error{ErrorCode::kInternal, "domain view not fetched"});
  }
  std::vector<std::size_t> all;
  all.reserve(adapters_.size());
  for (std::size_t i = 0; i < adapters_.size(); ++i) {
    if (!health_.admits(i)) {
      results[i] = Error{ErrorCode::kUnavailable,
                         "circuit open for domain " + domain_names_[i]};
      continue;
    }
    all.push_back(i);
  }
  const auto groups = exclusion_groups(all);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(groups.size());
  for (std::size_t g = 0; g < groups.size(); ++g) {
    tasks.push_back([this, &groups, &results, g] {
      for (const std::size_t index : groups[g]) {
        results[index] = adapters_[index]->fetch_view();
      }
    });
  }
  pool().run_all(std::move(tasks), options_.push.parallelism);
  return results;
}

Result<void> ResourceOrchestrator::resync_domains() {
  if (!initialized_) {
    return Error{ErrorCode::kUnavailable, "RO not initialized"};
  }
  metrics_.add("ro.resyncs");
  return push_slices();
}

Result<void> ResourceOrchestrator::sync_statuses() {
  // Fetch concurrently, fold into the view sequentially (in domain order,
  // so the merged result is identical to the old sequential loop).
  std::vector<Result<model::Nffg>> fetched = fetch_views_parallel();
  MultiError failures;
  for (std::size_t i = 0; i < adapters_.size(); ++i) {
    if (!health_.admits(i)) {
      // Known-down domain: its NFs keep their last known statuses (the
      // healing pass stamps them kFailed when it gives up on them) and the
      // sync itself still succeeds for the survivors.
      continue;
    }
    if (!fetched[i].ok()) {
      note_southbound_outcome(i, fetched[i].error());
      failures.add(adapters_[i]->domain(), fetched[i].error());
      continue;
    }
    note_southbound_outcome(i, Result<void>::success());
    const model::Nffg& domain_view = *fetched[i];
    model::Nffg& view = view_.mut();
    bool changed = false;
    for (const auto& [bb_id, bb] : domain_view.bisbis()) {
      model::BisBis* mine = view.find_bisbis(bb_id);
      if (mine == nullptr) continue;
      for (const auto& [nf_id, nf] : bb.nfs) {
        const auto it = mine->nfs.find(nf_id);
        if (it != mine->nfs.end() && it->second.status != nf.status) {
          it->second.status = nf.status;
          changed = true;
        }
      }
    }
    // Only an actually-changed status dirties the domain's shard; a
    // no-op sync keeps the push fast path armed.
    if (changed) view_.bump(adapters_[i]->domain());
  }
  if (!failures.empty()) return failures.to_error();
  return Result<void>::success();
}

void ResourceOrchestrator::note_southbound_outcome(std::size_t index,
                                                  const Result<void>& result) {
  if (result.ok()) {
    health_.record_success(index);
    refresh_health_penalties();
    return;
  }
  if (health_.record_failure(index, result.error())) {
    metrics_.add("ro.health.circuit_opens");
    push_state_[index].valid = false;
    remask_view();  // refreshes penalties too
  } else {
    refresh_health_penalties();
  }
}

void ResourceOrchestrator::refresh_health_penalties() {
  if (domain_names_.empty()) return;
  std::map<std::string, double> by_domain;
  for (std::size_t i = 0; i < domain_names_.size(); ++i) {
    by_domain[domain_names_[i]] = health_.penalty(i);
  }
  // health_penalty is orchestrator-internal (never serialized into a
  // slice and excluded from content_hash), so no shard stamp moves here.
  for (auto& [bb_id, bb] : view_.mut().bisbis()) {
    const auto it = by_domain.find(bb.domain);
    bb.health_penalty = it == by_domain.end() ? 0.0 : it->second;
  }
}

void ResourceOrchestrator::remask_view() {
  // Restore everything previously masked, then re-mask from scratch for
  // the currently open circuits. Rebuilding wholesale keeps the
  // bookkeeping correct when adjacent domains go down and recover in any
  // interleaving (a per-domain mask would save already-zeroed values).
  //
  // Shards touched: the previously-down domains (their values are
  // restored) plus the currently-down ones (they get zeroed) — a masked
  // link is either intra-domain (in that domain's slice) or cross-domain
  // (in no slice), so no other shard can change.
  std::set<std::string> affected;
  {
    model::Nffg& view = view_.mut();
    for (const auto& [bb_id, capacity] : mask_.bb_capacity) {
      if (model::BisBis* bb = view.find_bisbis(bb_id); bb != nullptr) {
        affected.insert(bb->domain);
        bb->capacity = capacity;
      }
    }
    for (const auto& [link_id, bandwidth] : mask_.link_bandwidth) {
      if (model::Link* link = view.find_link(link_id); link != nullptr) {
        link->attrs.bandwidth = bandwidth;
      }
    }
  }
  mask_ = ViewMask{};

  std::set<std::string> down;
  for (const std::size_t i : health_.open_circuits()) {
    down.insert(domain_names_[i]);
  }
  metrics_.set_gauge("ro.health.down_domains",
                     static_cast<double>(down.size()));
  refresh_health_penalties();
  affected.insert(down.begin(), down.end());
  if (!affected.empty()) {
    view_.bump(std::vector<std::string>(affected.begin(), affected.end()));
  }
  if (down.empty()) return;

  model::Nffg& view = view_.mut();
  const auto in_down_domain = [&](const std::string& node_id) {
    const model::BisBis* bb = view.find_bisbis(node_id);
    return bb != nullptr && down.count(bb->domain) != 0;
  };
  for (auto& [bb_id, bb] : view.bisbis()) {
    if (down.count(bb.domain) == 0) continue;
    mask_.bb_capacity.emplace(bb_id, bb.capacity);
    // Zero capacity (not capacity = allocated): residual stays <= 0 even
    // while healing uninstalls strand-ed placements, so the mapper can
    // never sneak a new NF onto the dead domain mid-pass.
    bb.capacity = model::Resources{};
  }
  for (auto& [link_id, link] : view.links()) {
    if (!in_down_domain(link.from.node) && !in_down_domain(link.to.node)) {
      continue;
    }
    mask_.link_bandwidth.emplace(link_id, link.attrs.bandwidth);
    link.attrs.bandwidth = 0;
  }
}

bool ResourceOrchestrator::touches_domains(
    const Deployment& deployment, const std::set<std::string>& down) const {
  if (down.empty()) return false;
  const model::Nffg& view = view_.read();
  const auto bb_down = [&](const std::string& bb_id) {
    const model::BisBis* bb = view.find_bisbis(bb_id);
    return bb != nullptr && down.count(bb->domain) != 0;
  };
  for (const auto& [nf_id, host] : deployment.mapping.nf_host) {
    if (bb_down(host)) return true;
  }
  for (const auto& [sg_link, path] : deployment.mapping.link_paths) {
    for (const std::string& link_id : path.links) {
      const model::Link* link = view.find_link(link_id);
      if (link == nullptr) continue;
      if (bb_down(link->from.node) || bb_down(link->to.node)) return true;
    }
  }
  return false;
}

std::vector<std::string> ResourceOrchestrator::touched_domains(
    const mapping::Mapping& mapping) const {
  std::set<std::string> domains;
  const model::Nffg& view = view_.read();
  const auto note = [&](const std::string& bb_id) {
    if (const model::BisBis* bb = view.find_bisbis(bb_id); bb != nullptr) {
      domains.insert(bb->domain);
    }
  };
  for (const auto& [nf_id, host] : mapping.nf_host) note(host);
  for (const auto& [sg_link, path] : mapping.link_paths) {
    for (const std::string& link_id : path.links) {
      if (const model::Link* link = view.find_link(link_id);
          link != nullptr) {
        note(link->from.node);
        note(link->to.node);
      }
    }
  }
  return {domains.begin(), domains.end()};
}

void ResourceOrchestrator::set_deployment_nf_status(
    const Deployment& deployment, model::NfStatus status) {
  model::Nffg& view = view_.mut();
  std::set<std::string> domains;
  for (const auto& [nf_id, host] : deployment.mapping.nf_host) {
    model::BisBis* bb = view.find_bisbis(host);
    if (bb == nullptr) continue;
    const auto it = bb->nfs.find(nf_id);
    if (it != bb->nfs.end() && it->second.status != status) {
      it->second.status = status;
      domains.insert(bb->domain);
    }
  }
  if (!domains.empty()) {
    view_.bump(std::vector<std::string>(domains.begin(), domains.end()));
  }
}

double ResourceOrchestrator::deployment_cpu(const Deployment& deployment) const {
  double cpu = 0;
  const model::Nffg& view = view_.read();
  for (const auto& [nf_id, host] : deployment.mapping.nf_host) {
    const model::BisBis* bb = view.find_bisbis(host);
    if (bb == nullptr) continue;
    const auto it = bb->nfs.find(nf_id);
    if (it != bb->nfs.end()) cpu += it->second.requirement.cpu;
  }
  return cpu;
}

Result<void> ResourceOrchestrator::heal_swap(const std::string& id,
                                             Deployment replacement) {
  const auto it = deployments_.find(id);
  if (it == deployments_.end()) {
    return Error{ErrorCode::kNotFound, "request " + id};
  }
  const Deployment previous = it->second;
  replacement.sequence = previous.sequence;
  // Break: the replacement embedding was verified against the view with the
  // old placement still installed, so releasing the old books now and
  // installing the replacement can only fail on internal inconsistency.
  UNIFY_RETURN_IF_ERROR(mapping::uninstall_mapping(
      view_.mut(), previous.expanded, previous.mapping));
  view_.bump(touched_domains(previous.mapping));
  if (const auto installed = mapping::install_mapping(
          view_.mut(), replacement.expanded, catalog_, replacement.mapping);
      !installed.ok()) {
    // Restore forcibly: the old hosts may sit on a masked (zero-capacity)
    // domain, which is exactly where the stranded placement came from.
    (void)mapping::install_mapping(view_.mut(), previous.expanded, catalog_,
                                   previous.mapping, /*force_placement=*/true);
    view_.bump(touched_domains(previous.mapping));
    return installed.error();
  }
  view_.bump(touched_domains(replacement.mapping));
  it->second = std::move(replacement);
  if (const auto pushed = push_slices(); !pushed.ok()) {
    // Swap back so the books keep describing what actually runs; the repush
    // converges domains that already accepted the new slice.
    (void)mapping::uninstall_mapping(view_.mut(), it->second.expanded,
                                     it->second.mapping);
    view_.bump(touched_domains(it->second.mapping));
    (void)mapping::install_mapping(view_.mut(), previous.expanded, catalog_,
                                   previous.mapping, /*force_placement=*/true);
    view_.bump(touched_domains(previous.mapping));
    it->second = previous;
    if (const auto repush = push_slices(); !repush.ok()) {
      UNIFY_LOG(kError, "orch.ro")
          << name_ << ": heal swap rollback push failed: "
          << repush.error().to_string();
    }
    return pushed.error();
  }
  return Result<void>::success();
}

Result<void> ResourceOrchestrator::open_circuit(const std::string& domain,
                                                const std::string& reason) {
  if (!initialized_) {
    return Error{ErrorCode::kUnavailable, "RO not initialized"};
  }
  for (std::size_t i = 0; i < domain_names_.size(); ++i) {
    if (domain_names_[i] != domain) continue;
    if (!health_.open_circuit(i, reason)) {
      return Error{ErrorCode::kAlreadyExists,
                   "circuit already open for domain " + domain};
    }
    metrics_.add("ro.health.circuit_opens");
    push_state_[i].valid = false;
    remask_view();
    return Result<void>::success();
  }
  return Error{ErrorCode::kNotFound, "domain " + domain};
}

Result<void> ResourceOrchestrator::note_domain_liveness(
    const std::string& domain, const Result<void>& observation) {
  if (!initialized_) {
    return Error{ErrorCode::kUnavailable, "RO not initialized"};
  }
  for (std::size_t i = 0; i < domain_names_.size(); ++i) {
    if (domain_names_[i] != domain) continue;
    if (!observation.ok()) metrics_.add("ro.health.liveness_failures");
    note_southbound_outcome(i, observation);
    return Result<void>::success();
  }
  return Error{ErrorCode::kNotFound, "domain " + domain};
}

Result<ResourceOrchestrator::HealReport> ResourceOrchestrator::heal() {
  if (!initialized_) {
    return Error{ErrorCode::kUnavailable, "RO not initialized"};
  }
  HealReport report;

  // Phase 1: half-open probe every down domain. A responsive domain is
  // readmitted immediately — capacity unmasked via remask_view(), dirty
  // push state — so the re-embedding below can already use its capacity.
  bool any_readmitted = false;
  for (const std::size_t i : health_.open_circuits()) {
    if (!health_.should_probe(i)) {
      // Still inside the exponential backoff window after earlier failed
      // probes: skip this pass (the domain stays down and masked).
      ++report.probes_deferred;
      metrics_.add("ro.health.probes_deferred");
      report.still_down.push_back(domain_names_[i]);
      continue;
    }
    health_.begin_probe(i);
    metrics_.add("ro.health.probes");
    if (const auto probed = adapters_[i]->probe(); probed.ok()) {
      health_.close_circuit(i);
      metrics_.add("ro.health.circuit_closes");
      push_state_[i].valid = false;
      report.readmitted.push_back(domain_names_[i]);
      any_readmitted = true;
    } else {
      health_.probe_failed(i, probed.error());
      metrics_.add("ro.health.probe_failures");
      report.still_down.push_back(domain_names_[i]);
    }
  }

  // Phase 1b: liveness-probe degraded (flaky but still admitted) domains.
  // A pass proves the domain recovered — record_success resets the failure
  // streak, so its embedding-cost penalty clears and load re-balances — and
  // a failure feeds the streak, tripping the breaker now rather than on the
  // next real push.
  for (std::size_t i = 0; i < adapters_.size(); ++i) {
    if (health_.health(i) != DomainHealth::kDegraded) continue;
    if (!health_.should_probe(i)) {
      ++report.probes_deferred;
      metrics_.add("ro.health.probes_deferred");
      continue;
    }
    metrics_.add("ro.health.probes");
    const auto probed = adapters_[i]->probe();
    if (!probed.ok()) metrics_.add("ro.health.probe_failures");
    note_southbound_outcome(i, probed);
  }
  remask_view();

  std::set<std::string> down;
  for (const std::size_t i : health_.open_circuits()) {
    down.insert(domain_names_[i]);
  }

  // Phase 2: walk deployments in submission order. Stranded ones (an NF or
  // a routed link on a still-down domain) are re-embedded onto surviving
  // capacity; ones stranded no longer (their domain came back) recover.
  std::vector<std::pair<std::uint64_t, std::string>> order;
  order.reserve(deployments_.size());
  for (const auto& [id, dep] : deployments_) {
    order.emplace_back(dep.sequence, id);
  }
  std::sort(order.begin(), order.end());
  std::vector<std::string> stranded;
  for (const auto& [sequence, id] : order) {
    auto it = deployments_.find(id);
    if (it == deployments_.end()) continue;
    if (touches_domains(it->second, down)) {
      stranded.push_back(id);
      continue;
    }
    if (it->second.degraded) {
      // The domain that stranded this request returned before we managed
      // to re-place it: the old placement is intact and the readmission
      // resync below re-pushes it. Statuses restart their lifecycle.
      it->second.degraded = false;
      it->second.degraded_reason.clear();
      set_deployment_nf_status(it->second, model::NfStatus::kRequested);
      metrics_.add("ro.health.recovered");
      report.recovered.push_back(id);
    }
  }

  const auto mark_degraded = [&](const std::string& id, const Error& error) {
    metrics_.add("ro.health.heal_failures");
    report.degraded.push_back(id);
    const auto still = deployments_.find(id);
    if (still != deployments_.end()) {
      // Unrecoverable for now: keep the deployment (its NFs may well be
      // running wherever the domain still is), surface it as degraded
      // and retry on the next pass.
      still->second.degraded = true;
      still->second.degraded_reason = error.to_string();
      set_deployment_nf_status(still->second, model::NfStatus::kFailed);
    }
    UNIFY_LOG(kWarn, "orch.ro")
        << name_ << ": heal could not re-place " << id << ": "
        << error.to_string();
  };

  if (options_.health.make_before_break) {
    // Make: map every stranded deployment's replacement against the masked
    // view first, in parallel on the shared pool (map_batch's speculative
    // machinery — workers read only view_/catalog_ and write disjoint
    // slots). The old placements are still installed, so each replacement
    // is planned against exactly the capacity the survivors really have,
    // and NF-id collisions cannot happen: place_nf() rejects a duplicate id
    // only on the same BiS-BiS, and the stranded hosts are masked to zero.
    std::vector<std::optional<Result<Deployment>>> prepared(stranded.size());
    std::vector<PrepareStats> stats(stranded.size());
    {
      // One frozen snapshot of the masked view for all speculative
      // replacements; released before the sequential swaps mutate.
      const model::ViewSnapshot snap = view_.snapshot();
      const mapping::SubstrateView frozen(snap);
      std::vector<std::function<void()>> tasks;
      tasks.reserve(stranded.size());
      for (std::size_t k = 0; k < stranded.size(); ++k) {
        const Deployment& dep = deployments_.at(stranded[k]);
        tasks.push_back([this, &prepared, &stats, &frozen, &dep, k] {
          prepared[k] = prepare(dep.original, frozen, stats[k]);
        });
      }
      pool().run_all(std::move(tasks));
    }

    // Break: strictly sequential swaps in submission order. Earlier swaps
    // consume survivor capacity, so each speculative mapping is re-verified
    // against the current view and re-mapped on conflict before the old
    // placement is released. On any failure the old books stay untouched
    // and the service goes degraded.
    for (std::size_t k = 0; k < stranded.size(); ++k) {
      const std::string& id = stranded[k];
      Result<Deployment> outcome = std::move(*prepared[k]);
      if (outcome.ok() &&
          !mapping::verify_mapping(outcome->expanded, view_.read(), catalog_,
                                   outcome->mapping)
               .ok()) {
        metrics_.add("ro.health.heal_remaps");
        outcome = prepare_current(deployments_.at(id).original, stats[k]);
      }
      if (outcome.ok()) {
        if (const auto swapped = heal_swap(id, std::move(outcome).value());
            swapped.ok()) {
          const auto healed = deployments_.find(id);
          healed->second.degraded = false;
          healed->second.degraded_reason.clear();
          metrics_.add("ro.health.heals");
          report.healed.push_back(id);
          continue;
        } else {
          outcome = swapped.error();
        }
      }
      mark_degraded(id, outcome.error());
    }
  } else {
    // Legacy uninstall-then-redeploy (ablation / bench baseline): between
    // the uninstall and the re-push the stranded footprint is in flight —
    // report the worst dip so the make-before-break win stays measurable.
    for (const std::string& id : stranded) {
      const std::uint64_t sequence = deployments_.at(id).sequence;
      report.max_capacity_dip_cpu = std::max(
          report.max_capacity_dip_cpu, deployment_cpu(deployments_.at(id)));
      if (const auto redone = redeploy(id); redone.ok()) {
        const auto healed = deployments_.find(id);
        if (healed != deployments_.end()) {
          // redeploy() committed a fresh Deployment; healing must not let a
          // re-embedding reshuffle the submission order of later passes.
          healed->second.sequence = sequence;
          healed->second.degraded = false;
          healed->second.degraded_reason.clear();
        }
        metrics_.add("ro.health.heals");
        report.healed.push_back(id);
      } else {
        mark_degraded(id, redone.error());
      }
    }
  }
  metrics_.set_gauge("ro.health.heal_max_dip_cpu",
                     report.max_capacity_dip_cpu);

  // Phase 3: push readmitted domains back to a byte-consistent slice.
  if (any_readmitted) {
    if (const auto resynced = resync_domains(); !resynced.ok()) {
      report.resync_error = resynced.error();
    }
  }
  drain_portfolio_metrics();
  return report;
}

std::optional<model::NfStatus> ResourceOrchestrator::nf_status(
    const std::string& nf_id) const {
  const auto found = view_.read().find_nf(nf_id);
  if (!found.has_value()) return std::nullopt;
  return found->second->status;
}

}  // namespace unify::core
