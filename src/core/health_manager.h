// Domain health manager: per-domain failure detection and circuit breaking.
//
// Real southbound domains fail, drain and come back; an RO that keeps
// retrying a dead domain turns every push fan-out into a retry storm and
// keeps embedding new services onto capacity that cannot be programmed.
// The HealthManager tracks one circuit-breaker state machine per domain:
//
//     healthy --(transient failures)--> degraded --(threshold)--> down
//        ^                                                          |
//        +-- close_circuit() <-- probing <------ begin_probe() -----+
//                                   |                               ^
//                                   +------- probe_failed() --------+
//
// The machine is fed passively by push/fetch outcomes (record_failure /
// record_success) and driven actively by the orchestrator's healing pass
// (begin_probe on a down domain, then close_circuit or probe_failed with
// the probe's outcome). Only transient transport errors (kUnavailable,
// kTimeout) count towards opening the circuit: a rejection proves the
// domain is alive and resets the failure streak. While the circuit is open
// (down or probing) the domain is excluded from the push/fetch fan-out —
// admits() is the gate — and the orchestrator masks its capacity out of
// the global view so new embeddings route around it (DESIGN.md §10).
//
// The manager is plain bookkeeping with no locking: it is only touched
// from the orchestrator's caller thread (pool workers report outcomes into
// private slots that the caller folds, as everywhere else in the RO).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"

namespace unify::core {

enum class DomainHealth { kHealthy, kDegraded, kDown, kProbing };
[[nodiscard]] const char* to_string(DomainHealth health) noexcept;

/// Circuit-breaker knobs, per RO (RoOptions::health).
struct HealthPolicy {
  /// Passive circuit breaking on/off. Forced opens (open_circuit) and the
  /// healing machinery keep working when disabled.
  bool enabled = true;
  /// Consecutive transient failures that open the circuit (domain down).
  int failure_threshold = 3;
  /// Consecutive transient failures that mark the domain degraded (still
  /// in the fan-out, but one step from the breaker).
  int degrade_after = 1;
  /// Embedding-cost bias (same unit as path delay) charged per consecutive
  /// transient failure while a domain is degraded, so flaky domains drain
  /// before their circuit trips. Must stay below probing_penalty even at
  /// streak == failure_threshold - 1 so a half-open domain never looks
  /// cheaper than a merely flaky one.
  double penalty_per_failure = 4.0;
  /// Bias while a probe is in flight (half-open): almost-but-not-readmitted.
  double probing_penalty = 32.0;
  /// Bias while down. Capacity is masked to zero anyway; this is belt and
  /// braces for force-installed placements that survive the mask.
  double down_penalty = 64.0;
  /// heal() maps each stranded deployment's replacement against the masked
  /// view *before* releasing the old placement (make-before-break): a heal
  /// pass never reduces the placed-service count and never dips substrate
  /// capacity below what the survivors need. Set false for the legacy
  /// uninstall-then-redeploy behaviour (ablation / bench baseline).
  bool make_before_break = true;
  /// Exponential probe backoff for heal(): after a failed probe the domain
  /// skips this many heal passes before the next probe; each further
  /// failure multiplies the window (capped); any success resets it. 0
  /// disables backoff (probe on every pass, the historical behaviour).
  int probe_backoff_initial = 0;
  double probe_backoff_multiplier = 2.0;
  int probe_backoff_cap = 8;
};

class HealthManager {
 public:
  struct DomainRecord {
    std::string domain;
    DomainHealth health = DomainHealth::kHealthy;
    /// Transient failures since the last success (resets on any response).
    int consecutive_failures = 0;
    std::uint64_t failures_total = 0;
    std::uint64_t circuit_opens = 0;
    std::uint64_t probes = 0;
    std::uint64_t probe_failures = 0;
    /// Bumps on every observation and transition (never regresses); lets
    /// callers detect "anything happened since I last looked" cheaply.
    std::uint64_t generation = 0;
    /// Heal passes left to skip before the next probe (exponential probe
    /// backoff, HealthPolicy::probe_backoff_initial). Counted down by
    /// should_probe(); escalated on probe/transport failures; reset by any
    /// success.
    int probe_cooldown = 0;
    /// The backoff window the last failure set (what the next failure
    /// multiplies from).
    int probe_backoff = 0;
    std::string last_error;  ///< most recent failure, for reports/logs
  };

  HealthManager() = default;

  /// (Re)arms the manager for `domains` (index-aligned with the RO's
  /// adapters). All domains start healthy.
  void reset(HealthPolicy policy, std::vector<std::string> domains);

  // -- passive feed (push/fetch outcomes) --------------------------------

  /// Records a failed southbound operation. Returns true when exactly this
  /// observation opened the circuit (the caller masks the domain then).
  /// Non-transient errors prove liveness and reset the failure streak;
  /// observations against an already-open circuit never re-open it.
  bool record_failure(std::size_t index, const Error& error);
  void record_success(std::size_t index);

  // -- active transitions (healing pass) ---------------------------------

  /// Forces the circuit open (healthy/degraded -> down) regardless of the
  /// failure streak — operator drain, or a caller that learned out-of-band
  /// that the domain died. Returns true when the state actually changed.
  bool open_circuit(std::size_t index, const std::string& reason);
  /// down -> probing (half-open): one cheap liveness probe is in flight.
  void begin_probe(std::size_t index);
  /// probing -> down: the probe failed, the breaker stays open.
  void probe_failed(std::size_t index, const Error& error);
  /// probing/down -> healthy: the domain is readmitted (the caller unmasks
  /// capacity and resyncs the slice). Resets the failure streak.
  void close_circuit(std::size_t index);
  /// Exponential probe backoff gate for heal(): true when the domain is
  /// due for a probe this pass. While a cooldown is pending, one call
  /// consumes one heal pass and returns false. Always true when backoff is
  /// disabled (probe_backoff_initial == 0).
  [[nodiscard]] bool should_probe(std::size_t index);

  // -- queries -----------------------------------------------------------

  /// False while the circuit is open (down or probing): the domain must be
  /// excluded from push/fetch fan-outs. Unknown indices are admitted, so
  /// the manager is safe to consult before reset() armed it.
  [[nodiscard]] bool admits(std::size_t index) const noexcept;
  [[nodiscard]] DomainHealth health(std::size_t index) const noexcept;
  /// Embedding-cost bias for the domain: 0 iff healthy, scaled by the
  /// failure streak while degraded, higher while probing/down (see
  /// HealthPolicy). The orchestrator projects it onto every BiS-BiS of the
  /// domain (model::BisBis::health_penalty) so mappers drain flaky domains
  /// before the breaker trips.
  [[nodiscard]] double penalty(std::size_t index) const noexcept;
  [[nodiscard]] const DomainRecord& record(std::size_t index) const;
  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
  /// Indices whose circuit is open (down or probing), ascending.
  [[nodiscard]] std::vector<std::size_t> open_circuits() const;
  [[nodiscard]] bool any_open() const noexcept;
  /// True when any domain is not kHealthy (degraded counts, unlike
  /// any_open): the layer above parks capacity-starved requests only while
  /// the substrate below is actually impaired.
  [[nodiscard]] bool any_unhealthy() const noexcept;
  /// Order-sensitive digest of the per-domain health STATES (not the
  /// generations): changes exactly when some domain transitions, stays put
  /// across mere observations. Admission layers stamp parked requests with
  /// it and retry them when it moves — "a domain was readmitted (or died),
  /// re-evaluate" — without coupling to this manager's internals.
  [[nodiscard]] std::uint64_t state_fingerprint() const noexcept;
  [[nodiscard]] const HealthPolicy& policy() const noexcept { return policy_; }

 private:
  /// Grows (or starts) the record's backoff window and arms the cooldown.
  /// No-op while backoff is disabled.
  void escalate_backoff(DomainRecord& rec);

  HealthPolicy policy_;
  std::vector<DomainRecord> records_;
};

}  // namespace unify::core
