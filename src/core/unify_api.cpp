#include "core/unify_api.h"

#include "model/nffg_json.h"

namespace unify::core {

UnifyServer::UnifyServer(Virtualizer& virtualizer,
                         std::shared_ptr<proto::Transport> transport,
                         std::string name)
    : virtualizer_(&virtualizer),
      peer_(std::move(transport), std::move(name)) {
  peer_.on_request(
      "get-config",
      [this](const json::Value&) -> Result<json::Value> {
        UNIFY_ASSIGN_OR_RETURN(const model::Nffg config,
                               virtualizer_->get_config());
        json::Object out;
        out.set("config", model::to_json(config));
        return json::Value{std::move(out)};
      });
  peer_.on_request(
      "edit-config",
      [this](const json::Value& params) -> Result<json::Value> {
        const json::Value* config_json = params.get("config");
        if (config_json == nullptr) {
          return Error{ErrorCode::kProtocol, "edit-config needs a config"};
        }
        UNIFY_ASSIGN_OR_RETURN(const model::Nffg desired,
                               model::nffg_from_json(*config_json));
        UNIFY_RETURN_IF_ERROR(virtualizer_->edit_config(desired));
        return json::Value{json::Object{}};
      });
}

namespace {

proto::SessionOptions single_shot_options() {
  // A fixed transport cannot be re-dialed: the session dies with it.
  proto::SessionOptions options;
  options.reconnect.enabled = false;
  return options;
}

}  // namespace

UnifyClientAdapter::UnifyClientAdapter(
    std::string domain_name, std::shared_ptr<proto::Transport> transport,
    SimTime rpc_timeout_us)
    : domain_(std::move(domain_name)),
      session_(domain_ + "-unify-client", transport->driver(), nullptr,
               single_shot_options(), transport),
      exclusion_key_(session_.driver().exclusion_key()),
      rpc_timeout_us_(rpc_timeout_us) {}

UnifyClientAdapter::UnifyClientAdapter(
    std::string domain_name, proto::Driver& driver,
    proto::ResilientSession::TransportFactory factory,
    proto::SessionOptions session_options, SimTime rpc_timeout_us)
    : domain_(std::move(domain_name)),
      session_(domain_ + "-unify-client", driver, std::move(factory),
               session_options),
      exclusion_key_(driver.exclusion_key()),
      rpc_timeout_us_(rpc_timeout_us) {}

Result<model::Nffg> UnifyClientAdapter::fetch_view() {
  UNIFY_ASSIGN_OR_RETURN(
      const json::Value reply,
      session_.call_and_wait("get-config", json::Value{json::Object{}},
                             rpc_timeout_us_));
  const json::Value* config = reply.get("config");
  if (config == nullptr) {
    return Error{ErrorCode::kProtocol, "get-config reply missing config"};
  }
  return model::nffg_from_json(*config);
}

Result<adapters::PushTicket> UnifyClientAdapter::begin_apply(
    const model::Nffg& desired) {
  if (inflight_.has_value()) {
    return Error{ErrorCode::kUnavailable,
                 "push already in flight in domain " + domain_};
  }
  json::Object params;
  params.set("config", model::to_json(desired));
  auto slot = std::make_shared<std::optional<Result<json::Value>>>();
  UNIFY_RETURN_IF_ERROR(session_.call(
      "edit-config", json::Value{std::move(params)},
      [slot](Result<json::Value> reply) { *slot = std::move(reply); },
      rpc_timeout_us_));
  inflight_ = InflightPush{next_push_id_++, std::move(slot)};
  return adapters::PushTicket{inflight_->id};
}

Result<void> UnifyClientAdapter::await(const adapters::PushTicket& ticket) {
  if (!inflight_.has_value() || inflight_->id != ticket.id) {
    return Error{ErrorCode::kInvalidArgument,
                 "stale push ticket " + std::to_string(ticket.id) +
                     " for domain " + domain_};
  }
  const auto slot = inflight_->slot;
  inflight_.reset();
  // Drive the transport until the child's acknowledgment (or the RPC
  // deadline) fires — simulated timers for channels, the epoll reactor
  // for sockets. Over a channel this is where the child stack runs.
  while (!slot->has_value() && session_.driver().pump()) {
  }
  // Whatever happened, the edit-config reached the wire: the child's
  // config may have changed, so this domain must not look clean.
  bump_epoch();
  if (!slot->has_value()) {
    return Error{ErrorCode::kUnavailable,
                 "driver idle with push still open (peer gone?)"};
  }
  if (!(*slot)->ok()) return (*slot)->error();
  return Result<void>::success();
}

Result<void> UnifyClientAdapter::apply(const model::Nffg& desired) {
  UNIFY_ASSIGN_OR_RETURN(const adapters::PushTicket ticket,
                         begin_apply(desired));
  return await(ticket);
}

Result<void> UnifyClientAdapter::probe() {
  // A protocol-level ping instead of the default full fetch_view: proves
  // the session and the peer's event loop without serializing a config.
  UNIFY_RETURN_IF_ERROR(session_.call_and_wait(
      "ping", json::Value{json::Object{}}, rpc_timeout_us_));
  return Result<void>::success();
}

std::unique_ptr<UnifyClientAdapter> make_unify_link(Virtualizer& child,
                                                    SimClock& clock,
                                                    std::string domain_name,
                                                    SimTime channel_latency_us) {
  auto [north, south] = proto::make_channel_pair(clock, channel_latency_us);
  auto server = std::make_shared<UnifyServer>(child, south,
                                              domain_name + "-unify-server");
  auto adapter =
      std::make_unique<UnifyClientAdapter>(std::move(domain_name), north);
  adapter->keep_alive(std::move(server));
  return adapter;
}

}  // namespace unify::core
