// Translation between virtualizer configurations (NFFG written onto a
// view) and service graphs — the mechanism behind recursive orchestration.
//
// A manager programs its view by placing NFs onto BiS-BiS nodes and editing
// flowrules (paper §2). The layer below re-derives the *intent* — a service
// graph — from that configuration and re-maps it at its own, finer
// granularity. Two configuration styles are understood:
//  * untagged rules whose endpoints are NF ports or SAP-facing node ports
//    (what a client writes onto a single-BiS-BiS view), and
//  * tag-chained rules spanning several BiS-BiS nodes (what install_mapping
//    produces on a full view; the tag is the SG link id).
#pragma once

#include <map>
#include <string>

#include "model/nffg.h"
#include "sg/service_graph.h"
#include "util/result.h"

namespace unify::core {

struct TranslatedConfig {
  sg::ServiceGraph sg;
  /// NF id -> BiS-BiS id the config placed it on. A lower layer may honour
  /// these (full-view client did the embedding) or ignore them
  /// (single-BiS-BiS view: the placement carries no information).
  std::map<std::string, std::string> pinned_hosts;
};

/// Derives the service graph expressed by `config`. `skeleton` supplies the
/// infrastructure context (which node ports face which SAPs). The service
/// graph id is `sg_id`.
[[nodiscard]] Result<TranslatedConfig> config_to_service_graph(
    const model::Nffg& config, const model::Nffg& skeleton,
    const std::string& sg_id);

/// Writes a service graph onto a single-BiS-BiS view as a configuration:
/// all NFs placed on `big_node`, one untagged flowrule per SG link, SAP
/// endpoints mapped to the node ports facing them, requirements as hints.
/// `base` must be the rendered view skeleton (it is copied and extended).
[[nodiscard]] Result<model::Nffg> service_graph_to_config(
    const sg::ServiceGraph& sg, const model::Nffg& base,
    const std::string& big_node);

}  // namespace unify::core
