// The Unify interface: the recursive resource-programming RPC between a
// manager and a virtualizer (paper: "The recursive interface is the Unify
// interface").
//
// Methods (JSON-RPC over a framed transport):
//   get-config   {}                      -> {"config": <NFFG>}
//   edit-config  {"config": <NFFG>}      -> {}
//
// UnifyServer exposes a Virtualizer northbound. UnifyClientAdapter makes a
// remote UNIFY domain look like any other DomainAdapter to the RO above —
// the recursion point of the architecture. Both are transport-agnostic
// (proto/transport.h): make_unify_link wires a child virtualizer over an
// in-memory channel, while examples/unify_rod.cpp serves the same
// UnifyServer over real TCP connections.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "adapters/domain_adapter.h"
#include "core/virtualizer.h"
#include "proto/channel.h"
#include "proto/resilient_session.h"
#include "proto/rpc.h"

namespace unify::core {

class UnifyServer {
 public:
  /// Serves `virtualizer` on `transport`. The virtualizer must outlive the
  /// server.
  UnifyServer(Virtualizer& virtualizer,
              std::shared_ptr<proto::Transport> transport, std::string name);

  [[nodiscard]] std::uint64_t requests_handled() const noexcept {
    return peer_.requests_handled();
  }
  /// Fires once when the session's transport closes (remote hangup or
  /// local disconnect) — the hook for connection-scoped server cleanup.
  void on_disconnect(std::function<void()> fn) {
    peer_.on_disconnect(std::move(fn));
  }

 private:
  Virtualizer* virtualizer_;
  proto::RpcPeer peer_;
};

class UnifyClientAdapter final : public adapters::DomainAdapter {
 public:
  /// Single-transport session: dies with the transport (no reconnect),
  /// the pre-§14 behaviour.
  UnifyClientAdapter(std::string domain_name,
                     std::shared_ptr<proto::Transport> transport,
                     SimTime rpc_timeout_us = 0);

  /// Survivable session: connects through `factory` and reconnects with
  /// backoff after any disconnect (proto/resilient_session.h). While the
  /// session is between transports every operation fails with a transient
  /// kUnavailable — the push retry policy and the epoch+hash dirty
  /// tracking above turn that into a cheap full resync after reconnect.
  /// Heartbeat verdicts and reconnect outcomes stream through
  /// on_liveness(); wire them to ResourceOrchestrator::
  /// note_domain_liveness so a silent partition trips the breaker at
  /// heartbeat speed.
  UnifyClientAdapter(std::string domain_name, proto::Driver& driver,
                     proto::ResilientSession::TransportFactory factory,
                     proto::SessionOptions session_options = {},
                     SimTime rpc_timeout_us = 0);

  [[nodiscard]] const std::string& domain() const noexcept override {
    return domain_;
  }
  [[nodiscard]] Result<model::Nffg> fetch_view() override;

  /// Native transactional push: begin_apply issues the edit-config RPC and
  /// returns immediately; await drives the transport until the child's
  /// acknowledgment (or timeout) lands. Over an in-memory channel the
  /// child virtualizer runs its own orchestration — recursively fanning
  /// its domain pushes out on the same shared pool — inside that drive,
  /// which is the architecture's recursion point; over TCP the child is a
  /// separate process and the drive pumps the socket.
  Result<adapters::PushTicket> begin_apply(const model::Nffg& desired) override;
  Result<void> await(const adapters::PushTicket& ticket) override;
  Result<void> apply(const model::Nffg& desired) override;

  [[nodiscard]] std::uint64_t native_operations() const noexcept override {
    return session_.counters().messages_sent;
  }
  /// Serialized with every other adapter in the same driver domain (all
  /// adapters sharing a SimClock, or all connections of one reactor).
  [[nodiscard]] const void* exclusion_key() const noexcept override {
    return exclusion_key_;
  }

  /// Liveness probe for the health manager: cheap session/ping check
  /// instead of the default full fetch_view.
  Result<void> probe() override;

  /// Subscribes to the session's liveness evidence (reconnects, failed
  /// connects, heartbeat misses); see proto::ResilientSession::on_liveness.
  void on_liveness(proto::ResilientSession::LivenessFn fn) {
    session_.on_liveness(std::move(fn));
  }
  [[nodiscard]] const proto::ResilientSession& session() const noexcept {
    return session_;
  }

  /// Attaches an owned object (e.g. the matching UnifyServer + child
  /// stack) whose lifetime must track this adapter's.
  void keep_alive(std::shared_ptr<void> dependency) {
    dependencies_.push_back(std::move(dependency));
  }

 private:
  std::string domain_;
  proto::ResilientSession session_;
  const void* exclusion_key_;
  SimTime rpc_timeout_us_;
  /// One in-flight edit-config: ticket id + where the response lands.
  struct InflightPush {
    std::uint64_t id = 0;
    std::shared_ptr<std::optional<Result<json::Value>>> slot;
  };
  std::optional<InflightPush> inflight_;
  std::uint64_t next_push_id_ = 1;
  std::vector<std::shared_ptr<void>> dependencies_;
};

/// Wires `child` behind a fresh in-memory channel: creates the UnifyServer
/// on one end and returns a UnifyClientAdapter (owning the server) on the
/// other, ready to be add_domain()-ed into a parent RO.
[[nodiscard]] std::unique_ptr<UnifyClientAdapter> make_unify_link(
    Virtualizer& child, SimClock& clock, std::string domain_name,
    SimTime channel_latency_us = 200);

}  // namespace unify::core
