// The Unify interface: the recursive resource-programming RPC between a
// manager and a virtualizer (paper: "The recursive interface is the Unify
// interface").
//
// Methods (JSON-RPC over a framed simulated channel):
//   get-config   {}                      -> {"config": <NFFG>}
//   edit-config  {"config": <NFFG>}      -> {}
//
// UnifyServer exposes a Virtualizer northbound. UnifyClientAdapter makes a
// remote UNIFY domain look like any other DomainAdapter to the RO above —
// the recursion point of the architecture. make_unify_link wires a child
// virtualizer to a fresh adapter over an in-memory channel.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "adapters/domain_adapter.h"
#include "core/virtualizer.h"
#include "proto/rpc.h"

namespace unify::core {

class UnifyServer {
 public:
  /// Serves `virtualizer` on `endpoint`. Both must outlive the server.
  UnifyServer(Virtualizer& virtualizer,
              std::shared_ptr<proto::Endpoint> endpoint, SimClock& clock,
              std::string name);

  [[nodiscard]] std::uint64_t requests_handled() const noexcept {
    return peer_.requests_handled();
  }

 private:
  Virtualizer* virtualizer_;
  proto::RpcPeer peer_;
};

class UnifyClientAdapter final : public adapters::DomainAdapter {
 public:
  UnifyClientAdapter(std::string domain_name,
                     std::shared_ptr<proto::Endpoint> endpoint,
                     SimClock& clock, SimTime rpc_timeout_us = 0);

  [[nodiscard]] const std::string& domain() const noexcept override {
    return domain_;
  }
  [[nodiscard]] Result<model::Nffg> fetch_view() override;

  /// Native transactional push: begin_apply issues the edit-config RPC and
  /// returns immediately; await drives the channel until the child's
  /// acknowledgment (or timeout) lands. The child virtualizer runs its own
  /// orchestration — recursively fanning its domain pushes out on the same
  /// shared pool — inside that drive, which is the architecture's
  /// recursion point.
  Result<adapters::PushTicket> begin_apply(const model::Nffg& desired) override;
  Result<void> await(const adapters::PushTicket& ticket) override;
  Result<void> apply(const model::Nffg& desired) override;

  [[nodiscard]] std::uint64_t native_operations() const noexcept override {
    return peer_.counters().messages_sent;
  }
  /// Serialized with every other adapter driving the same simulated clock.
  [[nodiscard]] const void* exclusion_key() const noexcept override {
    return clock_;
  }

  /// Attaches an owned object (e.g. the matching UnifyServer + child
  /// stack) whose lifetime must track this adapter's.
  void keep_alive(std::shared_ptr<void> dependency) {
    dependencies_.push_back(std::move(dependency));
  }

 private:
  std::string domain_;
  proto::RpcPeer peer_;
  SimClock* clock_;
  SimTime rpc_timeout_us_;
  /// One in-flight edit-config: ticket id + where the response lands.
  struct InflightPush {
    std::uint64_t id = 0;
    std::shared_ptr<std::optional<Result<json::Value>>> slot;
  };
  std::optional<InflightPush> inflight_;
  std::uint64_t next_push_id_ = 1;
  std::vector<std::shared_ptr<void>> dependencies_;
};

/// Wires `child` behind a fresh channel: creates the UnifyServer on one end
/// and returns a UnifyClientAdapter (owning the server) on the other, ready
/// to be add_domain()-ed into a parent RO.
[[nodiscard]] std::unique_ptr<UnifyClientAdapter> make_unify_link(
    Virtualizer& child, SimClock& clock, std::string domain_name,
    SimTime channel_latency_us = 200);

}  // namespace unify::core
