// Sharded copy-on-write substrate state for the resource orchestrator.
//
// The orchestrator's global view is logically partitioned into per-domain
// shards: every BiS-BiS belongs to exactly one technology domain, and the
// push path serializes the view one domain slice at a time. This container
// tracks that structure explicitly:
//
//  * Copy-on-write snapshots. snapshot() hands readers an immutable
//    ViewSnapshot (view + topology index + epoch) in O(1). The live view
//    is cloned lazily — only when mut() is called while snapshots are
//    still alive — so speculative mappers in map_batch()/heal() read a
//    frozen epoch while the sequential commit phase keeps writing, without
//    copying a million-node graph per batch.
//
//  * Epochs and shard stamps. Each commit advances the epoch and stamps
//    the shards (domains) it touched. Downstream consumers key their work
//    on the stamps: the push path skips a domain whose shard stamp still
//    matches the last acknowledged push without even materializing the
//    slice, and caches invalidate only for shards a commit touched.
//
// Threading contract (single control thread): mut(), bump*() and reset()
// may only be called from the orchestration thread, and never while that
// thread has worker tasks in flight that could call snapshot(). Snapshots
// themselves are deeply immutable — any number of worker threads may read
// a previously acquired snapshot while the control thread mutates; the
// CoW clone guarantees they never observe a later epoch's writes.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "model/nffg.h"
#include "model/view_snapshot.h"

namespace unify::core {

class ShardedViewState {
 public:
  ShardedViewState();
  explicit ShardedViewState(model::Nffg base);

  // Snapshots and the lazy index point into the managed view; the state is
  // pinned to its orchestrator.
  ShardedViewState(const ShardedViewState&) = delete;
  ShardedViewState& operator=(const ShardedViewState&) = delete;

  /// The live view (read-only, control thread or quiescent state).
  [[nodiscard]] const model::Nffg& read() const noexcept { return *view_; }

  /// Write access to the live view. Clones it first iff snapshots still
  /// reference it (copy-on-write), so outstanding readers keep their
  /// epoch. Callers that change the *topology* (nodes or links added or
  /// removed, static link attrs changed) must use mut_topology() instead:
  /// plain mut() keeps the shared topology index, which reads residuals
  /// and penalties live but caches structure.
  [[nodiscard]] model::Nffg& mut();

  /// mut() + drops the cached topology index (structure changed).
  [[nodiscard]] model::Nffg& mut_topology();

  /// O(1) immutable snapshot of the current epoch. Builds the shared
  /// topology index on first acquisition after a structural change.
  [[nodiscard]] model::ViewSnapshot snapshot() const;

  /// Replaces the whole view (initial sync / wholesale refresh): resets
  /// the CoW chain and stamps every shard.
  void reset(model::Nffg base);

  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }

  /// Stamp of one domain shard: the epoch of the last commit that touched
  /// it (0 = untouched since construction).
  [[nodiscard]] std::uint64_t shard_stamp(
      const std::string& domain) const noexcept;

  /// Advances the epoch and stamps the given shards. Domains repeat-freely;
  /// the unknown-domain shard ("" — nodes without a domain label) is a
  /// shard like any other.
  void bump(const std::vector<std::string>& domains);
  void bump(const std::string& domain);

  /// Advances the epoch and stamps every shard, present and future (a
  /// floor under all per-domain stamps). For wholesale view rewrites.
  void bump_all();

  struct Telemetry {
    std::uint64_t snapshots = 0;     ///< snapshot() acquisitions
    std::uint64_t clones = 0;        ///< CoW view copies forced by mut()
    std::uint64_t index_builds = 0;  ///< topology index (re)builds
  };
  [[nodiscard]] const Telemetry& telemetry() const noexcept {
    return telemetry_;
  }

 private:
  std::shared_ptr<model::Nffg> view_;
  /// Index over *view_; shared into snapshots, rebuilt lazily after a
  /// clone or a structural mutation.
  mutable std::shared_ptr<const model::TopologyIndex> index_;
  std::uint64_t epoch_ = 0;
  /// Floor applied to every shard stamp (bump_all watermark).
  std::uint64_t floor_ = 0;
  std::map<std::string, std::uint64_t> stamps_;
  mutable Telemetry telemetry_;
};

}  // namespace unify::core
