#include "core/sharded_state.h"

#include <algorithm>
#include <utility>

namespace unify::core {

ShardedViewState::ShardedViewState()
    : view_(std::make_shared<model::Nffg>()) {}

ShardedViewState::ShardedViewState(model::Nffg base)
    : view_(std::make_shared<model::Nffg>(std::move(base))) {}

model::Nffg& ShardedViewState::mut() {
  if (view_.use_count() > 1) {
    // Snapshots still reference the current object: clone, leave the old
    // epoch (and its index) to the outstanding readers. The clone reads
    // the old object — concurrent snapshot readers see only reads.
    view_ = std::make_shared<model::Nffg>(*view_);
    index_.reset();
    ++telemetry_.clones;
  }
  return *view_;
}

model::Nffg& ShardedViewState::mut_topology() {
  model::Nffg& live = mut();
  index_.reset();
  return live;
}

model::ViewSnapshot ShardedViewState::snapshot() const {
  if (index_ == nullptr) {
    index_ = std::make_shared<const model::TopologyIndex>(*view_);
    ++telemetry_.index_builds;
  }
  ++telemetry_.snapshots;
  return model::ViewSnapshot{view_, index_, epoch_};
}

void ShardedViewState::reset(model::Nffg base) {
  view_ = std::make_shared<model::Nffg>(std::move(base));
  index_.reset();
  bump_all();
}

std::uint64_t ShardedViewState::shard_stamp(
    const std::string& domain) const noexcept {
  const auto it = stamps_.find(domain);
  return it == stamps_.end() ? floor_ : std::max(it->second, floor_);
}

void ShardedViewState::bump(const std::vector<std::string>& domains) {
  ++epoch_;
  for (const std::string& domain : domains) stamps_[domain] = epoch_;
}

void ShardedViewState::bump(const std::string& domain) {
  stamps_[domain] = ++epoch_;
}

void ShardedViewState::bump_all() {
  floor_ = ++epoch_;
  stamps_.clear();
}

}  // namespace unify::core
