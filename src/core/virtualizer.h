// Virtualizer: presents a view of the RO's resources to one manager
// (client) and accepts configurations written onto that view (the green
// boxes of the paper's Fig. 1).
//
// Two view policies realize the paper's delegation spectrum:
//  * kSingleBisBis — the whole orchestration domain collapses into one
//    BiS-BiS; the client's "mapping" is trivial and all resource management
//    is delegated downward (paper: "If a service orchestrator sees only a
//    single BiS-BiS node then its orchestration task is trivial").
//  * kFull — the client sees the complete topology and decides placements
//    itself; this RO only routes and enforces.
//
// edit-config is declarative: the client sends its full desired config; the
// virtualizer diffs it against the accepted config at service-graph level,
// removes/redeploys affected services and deploys new ones through the RO.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>

#include "core/config_translate.h"
#include "core/resource_orchestrator.h"
#include "model/nffg.h"
#include "util/result.h"

namespace unify::core {

enum class ViewPolicy { kSingleBisBis, kFull };

class Virtualizer {
 public:
  /// `big_node_id` names the collapsed node for kSingleBisBis (defaults to
  /// "<ro name>.big"); ignored for kFull. The RO must be initialized
  /// before the first get_config/edit_config and must outlive this object.
  Virtualizer(ResourceOrchestrator& ro, ViewPolicy policy,
              std::string big_node_id = {});

  /// The client-visible tree: view skeleton + everything this client has
  /// configured, with NF statuses rolled up from below (a decomposed NF is
  /// running iff all its components are).
  [[nodiscard]] Result<model::Nffg> get_config();

  /// Accepts a full desired configuration over the view.
  Result<void> edit_config(const model::Nffg& desired);

  [[nodiscard]] ViewPolicy policy() const noexcept { return policy_; }
  [[nodiscard]] const std::string& big_node_id() const noexcept {
    return big_node_id_;
  }
  /// RO-level request ids currently live for this client.
  [[nodiscard]] std::vector<std::string> active_requests() const;
  [[nodiscard]] std::uint64_t edits() const noexcept { return edits_; }

 private:
  Result<void> ensure_skeleton();
  [[nodiscard]] Result<model::Nffg> render_single_bisbis() const;
  /// Status of a client-level NF, aggregated over its expansion below.
  [[nodiscard]] model::NfStatus rolled_up_status(
      const std::string& nf_id) const;

  struct ClientService {
    std::string ro_request;
    std::set<std::string> nf_ids;    ///< client-level NF ids
    std::set<std::string> link_ids;  ///< client-level SG link ids
    std::set<std::string> req_ids;   ///< client-level requirement ids
  };

  ResourceOrchestrator* ro_;
  ViewPolicy policy_;
  std::string big_node_id_;
  std::optional<model::Nffg> skeleton_;
  model::Nffg accepted_;  ///< last accepted client config
  /// content_hash(accepted_): lets edit_config() short-circuit a desired
  /// config identical to the accepted one without translating/diffing it.
  /// Invalidated (nullopt) while an edit is mutating books/RO state: a
  /// failed edit leaves the deployed state diverged from accepted_, and
  /// the client's recovery push of the accepted config must re-diff, not
  /// short-circuit.
  std::optional<std::uint64_t> accepted_hash_;
  std::optional<TranslatedConfig> accepted_translated_;
  std::map<std::string, ClientService> services_;
  int next_request_ = 1;
  std::uint64_t edits_ = 0;
};

}  // namespace unify::core
