#include "core/pinned_mapper.h"

#include "mapping/context.h"

namespace unify::core {

Result<mapping::Mapping> PinnedMapper::map(
    const sg::ServiceGraph& sg, const mapping::SubstrateView& substrate,
    const catalog::NfCatalog& catalog) const {
  mapping::Context ctx(sg, substrate, catalog);
  for (const auto& [nf_id, nf] : sg.nfs()) {
    const auto pin = pins_.find(nf_id);
    if (pin == pins_.end()) {
      return Error{ErrorCode::kInvalidArgument,
                   "NF " + nf_id + " has no pinned host"};
    }
    UNIFY_RETURN_IF_ERROR(ctx.place(nf_id, pin->second));
  }
  UNIFY_RETURN_IF_ERROR(ctx.route_all());
  UNIFY_RETURN_IF_ERROR(ctx.check_requirements());
  return ctx.finish(name());
}

}  // namespace unify::core
