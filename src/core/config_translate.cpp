#include "core/config_translate.h"

#include <algorithm>
#include <set>

namespace unify::core {

namespace {

/// The SAP (if any) on the far side of infra port (node, port) in skeleton.
std::optional<std::string> sap_behind_port(const model::Nffg& skeleton,
                                           const model::PortRef& ref) {
  for (const auto& [link_id, link] : skeleton.links()) {
    if (link.from == ref && skeleton.find_sap(link.to.node) != nullptr) {
      return link.to.node;
    }
    if (link.to == ref && skeleton.find_sap(link.from.node) != nullptr) {
      return link.from.node;
    }
  }
  return std::nullopt;
}

/// Maps a flowrule endpoint to an SG endpoint. `bb` is the rule's node.
Result<model::PortRef> map_endpoint(const model::Nffg& config,
                                    const model::Nffg& skeleton,
                                    const model::BisBis& bb,
                                    const model::PortRef& ref) {
  if (bb.nfs.count(ref.node) != 0) {
    return ref;  // NF port, already SG-level
  }
  if (ref.node == bb.id) {
    if (const auto sap = sap_behind_port(skeleton, ref)) {
      return model::PortRef{*sap, 0};
    }
    return Error{ErrorCode::kInvalidArgument,
                 "chain endpoint " + ref.to_string() +
                     " does not face a SAP"};
  }
  (void)config;
  return Error{ErrorCode::kInvalidArgument,
               "unresolvable flowrule endpoint " + ref.to_string()};
}

struct RuleRef {
  const model::BisBis* bb;
  const model::Flowrule* rule;
};

}  // namespace

Result<TranslatedConfig> config_to_service_graph(const model::Nffg& config,
                                                 const model::Nffg& skeleton,
                                                 const std::string& sg_id) {
  TranslatedConfig out;
  out.sg.set_id(sg_id);

  // SAPs and NFs.
  for (const auto& [sap_id, sap] : skeleton.saps()) {
    UNIFY_RETURN_IF_ERROR(out.sg.add_sap(sap_id, sap.name));
  }
  for (const auto& [bb_id, bb] : config.bisbis()) {
    for (const auto& [nf_id, nf] : bb.nfs) {
      UNIFY_RETURN_IF_ERROR(out.sg.add_nf(sg::SgNf{
          nf_id, nf.type, static_cast<int>(nf.ports.size()),
          nf.requirement}));
      out.pinned_hosts.emplace(nf_id, bb_id);
    }
  }

  // Flowrules -> SG links. Untagged rules translate directly; tagged rules
  // are chain segments grouped by tag.
  std::map<std::string, std::vector<RuleRef>> chains;  // tag -> segments
  for (const auto& [bb_id, bb] : config.bisbis()) {
    for (const model::Flowrule& rule : bb.flowrules) {
      if (rule.match_tag.empty() && rule.set_tag.empty()) {
        UNIFY_ASSIGN_OR_RETURN(const model::PortRef from,
                               map_endpoint(config, skeleton, bb, rule.in));
        UNIFY_ASSIGN_OR_RETURN(const model::PortRef to,
                               map_endpoint(config, skeleton, bb, rule.out));
        UNIFY_RETURN_IF_ERROR(
            out.sg.add_link(sg::SgLink{rule.id, from, to, rule.bandwidth}));
      } else {
        const std::string& tag =
            !rule.match_tag.empty() ? rule.match_tag
                                    : rule.set_tag;  // starter carries set
        chains[tag].push_back(RuleRef{&bb, &rule});
      }
    }
  }
  for (const auto& [tag, segments] : chains) {
    // A slice may hold only part of a chain (the rest lives in sibling
    // domains), so heads/tails are found structurally: a segment with no
    // same-tag feeder through an intra-config link starts the local chain,
    // one that feeds nobody ends it. Endpoints of the local chain then map
    // to NF ports or SAP-facing node ports (stitching SAPs included) —
    // exactly what re-orchestration below needs.
    const auto feeds = [&](const RuleRef& a, const RuleRef& b) {
      if (a.rule->out.node != a.bb->id || b.rule->in.node != b.bb->id) {
        return false;  // NF-port endpoints terminate chains
      }
      for (const auto& [link_id, link] : config.links()) {
        if (link.from == a.rule->out && link.to == b.rule->in) return true;
      }
      return false;
    };
    const RuleRef* head = nullptr;
    const RuleRef* tail = nullptr;
    double bandwidth = 0;
    for (const RuleRef& seg : segments) {
      bandwidth = std::max(bandwidth, seg.rule->bandwidth);
      bool has_feeder = false;
      bool feeds_other = false;
      for (const RuleRef& other : segments) {
        if (&other == &seg) continue;
        has_feeder |= feeds(other, seg);
        feeds_other |= feeds(seg, other);
      }
      if (!has_feeder) {
        if (head != nullptr) {
          return Error{ErrorCode::kInvalidArgument,
                       "tag chain " + tag + " has two heads"};
        }
        head = &seg;
      }
      if (!feeds_other) {
        if (tail != nullptr) {
          return Error{ErrorCode::kInvalidArgument,
                       "tag chain " + tag + " has two tails"};
        }
        tail = &seg;
      }
    }
    if (head == nullptr || tail == nullptr) {
      return Error{ErrorCode::kInvalidArgument,
                   "tag chain " + tag + " is missing head or tail"};
    }
    UNIFY_ASSIGN_OR_RETURN(
        const model::PortRef from,
        map_endpoint(config, skeleton, *head->bb, head->rule->in));
    UNIFY_ASSIGN_OR_RETURN(
        const model::PortRef to,
        map_endpoint(config, skeleton, *tail->bb, tail->rule->out));
    UNIFY_RETURN_IF_ERROR(
        out.sg.add_link(sg::SgLink{tag, from, to, bandwidth}));
  }

  // Hints -> requirements.
  for (const model::ServiceHint& hint : config.hints()) {
    UNIFY_RETURN_IF_ERROR(out.sg.add_requirement(sg::E2eRequirement{
        hint.id, hint.from_sap, hint.to_sap, hint.max_delay,
        hint.min_bandwidth}));
  }

  // Constraints ride along; pin/forbid constraints whose host is a node of
  // *this* view were about the view itself and carry no meaning below
  // (they are enforced by the placement encoded in the config already).
  for (const model::PlacementConstraint& c : config.constraints()) {
    if (c.kind != model::ConstraintKind::kAntiAffinity &&
        skeleton.find_bisbis(c.host) != nullptr) {
      continue;
    }
    UNIFY_RETURN_IF_ERROR(out.sg.add_constraint(c));
  }
  return out;
}

Result<model::Nffg> service_graph_to_config(const sg::ServiceGraph& sg,
                                            const model::Nffg& base,
                                            const std::string& big_node) {
  model::Nffg config = base;
  const model::BisBis* bb = config.find_bisbis(big_node);
  if (bb == nullptr) {
    return Error{ErrorCode::kNotFound, "big node " + big_node + " in view"};
  }

  // Port facing each SAP (from the view's links).
  std::map<std::string, int> sap_port;
  for (const auto& [link_id, link] : config.links()) {
    if (config.find_sap(link.from.node) != nullptr &&
        link.to.node == big_node) {
      sap_port[link.from.node] = link.to.port;
    }
  }

  for (const auto& [nf_id, nf] : sg.nfs()) {
    model::NfInstance instance;
    instance.id = nf_id;
    instance.type = nf.type;
    instance.requirement = nf.requirement_override;
    for (int p = 0; p < nf.port_count; ++p) {
      instance.ports.push_back(model::Port{p, ""});
    }
    // Requirements are resolved below; the view capacity check would need
    // the catalog, so placement is forced (the RO re-checks during
    // mapping anyway).
    UNIFY_RETURN_IF_ERROR(config.place_nf(big_node, std::move(instance),
                                          /*force=*/true));
  }
  for (const sg::SgLink& link : sg.links()) {
    const auto endpoint = [&](const model::PortRef& ref)
        -> Result<model::PortRef> {
      if (sg.has_sap(ref.node)) {
        const auto it = sap_port.find(ref.node);
        if (it == sap_port.end()) {
          return Error{ErrorCode::kNotFound,
                       "view has no port facing SAP " + ref.node};
        }
        return model::PortRef{big_node, it->second};
      }
      return ref;
    };
    model::Flowrule rule;
    rule.id = link.id;
    UNIFY_ASSIGN_OR_RETURN(rule.in, endpoint(link.from));
    UNIFY_ASSIGN_OR_RETURN(rule.out, endpoint(link.to));
    rule.bandwidth = link.bandwidth;
    UNIFY_RETURN_IF_ERROR(config.add_flowrule(big_node, std::move(rule)));
  }
  for (const sg::E2eRequirement& req : sg.requirements()) {
    UNIFY_RETURN_IF_ERROR(config.add_hint(model::ServiceHint{
        req.id, req.from_sap, req.to_sap, req.max_delay,
        req.min_bandwidth}));
  }
  for (const sg::PlacementConstraint& c : sg.constraints()) {
    UNIFY_RETURN_IF_ERROR(config.add_constraint(c));
  }
  return config;
}

}  // namespace unify::core
