// Shared, lazily started worker pool for CPU-bound orchestration work.
//
// PR 1 gave ResourceOrchestrator::map_batch a private ThreadPool per call:
// correct, but every batch paid thread spawn/join, and two batch clients
// (the RO and the batch-aware service layer above it) would each grow their
// own pool. OrchestrationPool fixes both: one pool, owned at process scope
// (process_pool()), started lazily on the first parallel batch and shared
// by every client. Because several clients may run batches concurrently,
// the pool joins per *batch*, not per queue: run_all() blocks until its own
// tasks finished, regardless of what other clients have in flight
// (ThreadPool::wait_idle would over-wait or never return under a steady
// concurrent load).
//
// The calling thread participates as a runner, so a batch always makes
// progress even when every pool worker is busy with someone else's batch —
// which also makes nested run_all() calls (service layer batch -> RO batch)
// deadlock-free.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "util/thread_pool.h"

namespace unify::util {

class OrchestrationPool {
 public:
  /// `workers` = 0 sizes the pool to the hardware concurrency. Threads are
  /// not spawned until the first run_all() that needs them.
  explicit OrchestrationPool(std::size_t workers = 0);

  OrchestrationPool(const OrchestrationPool&) = delete;
  OrchestrationPool& operator=(const OrchestrationPool&) = delete;

  /// The process-scoped shared instance injected (by default) into every
  /// ResourceOrchestrator and ServiceLayer. Constructed on first use,
  /// never destroyed before exit.
  [[nodiscard]] static OrchestrationPool& process_pool();

  /// Runs every task and blocks until all of them completed. Safe to call
  /// from several threads concurrently; each call waits only for its own
  /// tasks. `max_parallel` caps the number of tasks of THIS batch in
  /// flight at once (0 = pool size); 1 runs the batch inline on the
  /// calling thread without touching the pool. Returns the number of
  /// runners actually used (1 when run inline).
  std::size_t run_all(std::vector<std::function<void()>> tasks,
                      std::size_t max_parallel = 0);

  /// Configured worker count (threads may not be spawned yet).
  [[nodiscard]] std::size_t workers() const noexcept { return workers_; }
  /// True once the lazy thread spawn happened.
  [[nodiscard]] bool started() const;

  // -- telemetry ----------------------------------------------------------
  /// Batches executed through run_all() (including inline ones).
  [[nodiscard]] std::uint64_t batches() const noexcept {
    return batches_.load(std::memory_order_relaxed);
  }
  /// Individual tasks executed.
  [[nodiscard]] std::uint64_t tasks_run() const noexcept {
    return tasks_.load(std::memory_order_relaxed);
  }
  /// OrchestrationPool instances ever constructed in this process. Tests
  /// assert this stays at 1 across arbitrarily many batches when everyone
  /// uses process_pool().
  [[nodiscard]] static std::uint64_t constructed() noexcept;

 private:
  /// Per-run_all join state, shared between the caller and its runners.
  /// The caller joins on `completed == tasks.size()`, never on runner
  /// exits: a queued runner lambda that was never scheduled (all pool
  /// threads busy, possibly with THIS caller's own nested batch) must not
  /// be able to block the join — it claims no tasks when it finally runs.
  struct Batch {
    std::vector<std::function<void()>> tasks;
    std::atomic<std::size_t> next{0};       ///< next unclaimed task index
    std::atomic<std::size_t> completed{0};  ///< tasks finished executing
    std::mutex done_mutex;
    std::condition_variable done;
  };

  void ensure_started();
  static void run_batch_tasks(Batch& batch);

  std::size_t workers_;
  mutable std::mutex start_mutex_;
  std::unique_ptr<ThreadPool> pool_;  ///< created lazily under start_mutex_
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> tasks_{0};
};

}  // namespace unify::util
