#include "util/strings.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace unify::strings {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i != 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

std::string_view trim(std::string_view text) noexcept {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin])) != 0) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1])) != 0) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool starts_with(std::string_view text, std::string_view prefix) noexcept {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) noexcept {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string format_double(double value) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::fabs(value) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", value);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

}  // namespace unify::strings
