// Result<T>: a lightweight expected-like type used across the control plane.
//
// The orchestration stack reports recoverable failures (mapping infeasible,
// domain rejected a config, malformed model, ...) as values, not exceptions:
// a manager must be able to inspect, aggregate and propagate errors from many
// domains without unwinding. Exceptions remain reserved for programming
// errors.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace unify {

/// Machine-readable error category carried alongside the human message.
enum class ErrorCode {
  kInvalidArgument,   ///< caller passed something malformed
  kNotFound,          ///< referenced entity does not exist
  kAlreadyExists,     ///< duplicate id / double-install
  kResourceExhausted, ///< insufficient cpu/mem/storage/bandwidth
  kInfeasible,        ///< no mapping satisfies the constraints
  kUnavailable,       ///< domain/channel down or not yet connected
  kProtocol,          ///< framing / codec / RPC violation
  kRejected,          ///< lower layer refused the configuration
  kTimeout,           ///< RPC or deployment deadline exceeded
  kRollbackFailed,    ///< op failed AND restoring prior state also failed:
                      ///< data plane may diverge from the control view
  kInternal,          ///< invariant violation inside the library
};

/// Returns a stable ASCII name for an ErrorCode ("infeasible", ...).
constexpr const char* to_string(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kInvalidArgument:   return "invalid_argument";
    case ErrorCode::kNotFound:          return "not_found";
    case ErrorCode::kAlreadyExists:     return "already_exists";
    case ErrorCode::kResourceExhausted: return "resource_exhausted";
    case ErrorCode::kInfeasible:        return "infeasible";
    case ErrorCode::kUnavailable:       return "unavailable";
    case ErrorCode::kProtocol:          return "protocol";
    case ErrorCode::kRejected:          return "rejected";
    case ErrorCode::kTimeout:           return "timeout";
    case ErrorCode::kRollbackFailed:    return "rollback_failed";
    case ErrorCode::kInternal:          return "internal";
  }
  return "unknown";
}

/// An error: category plus a human-readable message assembled at the
/// failure site (include ids of the entities involved).
struct Error {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;

  /// "infeasible: no path from sap1 to fw0 within 5ms"
  [[nodiscard]] std::string to_string() const {
    std::string out = unify::to_string(code);
    if (!message.empty()) {
      out += ": ";
      out += message;
    }
    return out;
  }

  friend bool operator==(const Error& a, const Error& b) {
    return a.code == b.code && a.message == b.message;
  }
};

/// Aggregates errors from a fan-out (one slice push per domain, one view
/// fetch per domain, ...) where every branch is attempted regardless of the
/// others' outcomes. Each entry carries the scope it failed in (a domain
/// name) plus the branch's own Error; to_error() collapses the collection
/// into one Error a Result can carry north.
class MultiError {
 public:
  void add(std::string scope, Error error) {
    entries_.emplace_back(std::move(scope), std::move(error));
  }

  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] const std::vector<std::pair<std::string, Error>>& entries()
      const noexcept {
    return entries_;
  }

  /// A single entry keeps its code verbatim (message prefixed with the
  /// scope, so "which domain" survives propagation); several entries take
  /// the first entry's code and a joined message listing every failure.
  /// Precondition: !empty().
  [[nodiscard]] Error to_error() const {
    assert(!empty());
    if (entries_.size() == 1) {
      const auto& [scope, error] = entries_.front();
      return Error{error.code, "[" + scope + "] " + error.message};
    }
    std::string message =
        std::to_string(entries_.size()) + " failures:";
    for (const auto& [scope, error] : entries_) {
      message += " [" + scope + "] " + error.to_string() + ";";
    }
    message.pop_back();
    return Error{entries_.front().second.code, std::move(message)};
  }

 private:
  std::vector<std::pair<std::string, Error>> entries_;
};

/// Result<T> holds either a T or an Error. Construction from either side is
/// implicit so `return Error{...}` and `return value` both work.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::in_place_index<0>, std::move(value)) {}  // NOLINT
  Result(Error error) : data_(std::in_place_index<1>, std::move(error)) {}  // NOLINT
  Result(ErrorCode code, std::string message)
      : data_(std::in_place_index<1>, Error{code, std::move(message)}) {}

  [[nodiscard]] bool ok() const noexcept { return data_.index() == 0; }
  explicit operator bool() const noexcept { return ok(); }

  /// Precondition: ok().
  [[nodiscard]] T& value() & {
    assert(ok());
    return std::get<0>(data_);
  }
  [[nodiscard]] const T& value() const& {
    assert(ok());
    return std::get<0>(data_);
  }
  [[nodiscard]] T&& value() && {
    assert(ok());
    return std::get<0>(std::move(data_));
  }
  [[nodiscard]] const T& operator*() const& { return value(); }
  [[nodiscard]] T& operator*() & { return value(); }
  [[nodiscard]] const T* operator->() const { return &value(); }
  [[nodiscard]] T* operator->() { return &value(); }

  /// Precondition: !ok().
  [[nodiscard]] const Error& error() const {
    assert(!ok());
    return std::get<1>(data_);
  }

  /// Returns the contained value or `fallback` when this holds an error.
  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? std::get<0>(data_) : std::move(fallback);
  }

 private:
  std::variant<T, Error> data_;
};

/// Result<void>: success or an Error.
template <>
class [[nodiscard]] Result<void> {
 public:
  Result() = default;
  Result(Error error) : error_(std::move(error)) {}  // NOLINT
  Result(ErrorCode code, std::string message)
      : error_(Error{code, std::move(message)}) {}

  [[nodiscard]] bool ok() const noexcept { return !error_.has_value(); }
  explicit operator bool() const noexcept { return ok(); }

  [[nodiscard]] const Error& error() const {
    assert(!ok());
    return *error_;
  }

  /// Canonical success value, reads better than `return {};` at call sites.
  static Result success() { return Result{}; }

 private:
  std::optional<Error> error_;
};

/// Propagate an error from an expression yielding Result<...>.
/// Usage: UNIFY_RETURN_IF_ERROR(do_thing());
#define UNIFY_RETURN_IF_ERROR(expr)            \
  do {                                         \
    if (auto res_ = (expr); !res_.ok()) {      \
      return res_.error();                     \
    }                                          \
  } while (false)

/// Bind the value of a Result or propagate its error.
/// Usage: UNIFY_ASSIGN_OR_RETURN(auto cfg, virtualizer.get_config());
#define UNIFY_ASSIGN_OR_RETURN(decl, expr)               \
  UNIFY_ASSIGN_OR_RETURN_IMPL_(                          \
      UNIFY_RESULT_CONCAT_(res_, __LINE__), decl, expr)
#define UNIFY_RESULT_CONCAT_INNER_(a, b) a##b
#define UNIFY_RESULT_CONCAT_(a, b) UNIFY_RESULT_CONCAT_INNER_(a, b)
#define UNIFY_ASSIGN_OR_RETURN_IMPL_(tmp, decl, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) {                                    \
    return tmp.error();                               \
  }                                                   \
  decl = std::move(tmp).value()

}  // namespace unify
