// Deterministic random number generator (splitmix64-seeded xoshiro256**).
//
// Workload generators and simulators must be reproducible across runs and
// platforms, so we avoid std::default_random_engine (unspecified) and
// std::*_distribution (implementation-defined sequences).
#pragma once

#include <cstdint>
#include <cassert>

namespace unify {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept {
    // splitmix64 to spread a small seed over the full state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  /// Uniform on [0, 2^64).
  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer on [0, bound). Precondition: bound > 0.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    assert(bound > 0);
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = -bound % bound;
    while (true) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer on [lo, hi] inclusive. Precondition: lo <= hi.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi) noexcept {
    assert(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(span == 0 ? next_u64()
                                                    : next_below(span));
  }

  /// Uniform double on [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double on [lo, hi).
  double next_double(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_double();
  }

  /// Bernoulli trial.
  bool next_bool(double probability_true) noexcept {
    return next_double() < probability_true;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace unify
