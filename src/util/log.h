// Minimal leveled logger for the orchestration stack.
//
// Components log through a per-subsystem tag ("orch.ro", "adapter.sdn", ...)
// so multi-layer traces stay readable. The sink is process-global and can be
// redirected into a buffer for tests.
#pragma once

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace unify::log {

enum class Level { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Stable lowercase name ("info", ...).
const char* to_string(Level level) noexcept;

/// Global minimum level; records below it are dropped before formatting.
void set_level(Level level) noexcept;
Level level() noexcept;

/// Replace the sink (default writes to stderr). Passing nullptr restores the
/// default. The sink receives the already-formatted line without newline.
using Sink = std::function<void(Level, std::string_view line)>;
void set_sink(Sink sink);

/// Emit one record; prefer the UNIFY_LOG macro which skips formatting when
/// the level is disabled.
void write(Level level, std::string_view tag, std::string_view message);

namespace detail {
class LineBuilder {
 public:
  LineBuilder(Level level, std::string_view tag) : level_(level), tag_(tag) {}
  ~LineBuilder() { write(level_, tag_, stream_.str()); }
  template <typename T>
  LineBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  Level level_;
  std::string_view tag_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace unify::log

/// UNIFY_LOG(kInfo, "orch.ro") << "mapped " << n << " NFs";
#define UNIFY_LOG(level_enum, tag)                                       \
  if (::unify::log::Level::level_enum < ::unify::log::level()) {         \
  } else                                                                 \
    ::unify::log::detail::LineBuilder(::unify::log::Level::level_enum, tag)
