// Fixed-size worker pool for CPU-bound orchestration work.
//
// The batch mapping front-end (ResourceOrchestrator::map_batch) fans
// independent embedding problems out to a small pool and joins before the
// sequential commit phase. Deliberately minimal: FIFO queue, no futures, no
// task priorities; callers that need results write them into pre-sized
// slots and call wait_idle().
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace unify::util {

class ThreadPool {
 public:
  /// Spawns `workers` threads (at least one).
  explicit ThreadPool(std::size_t workers) {
    const std::size_t count = workers == 0 ? 1 : workers;
    threads_.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      threads_.emplace_back([this] { run(); });
    }
  }

  /// Drains nothing: queued tasks that never ran are dropped, running tasks
  /// are joined. Call wait_idle() first when completion matters.
  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    wake_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not submit to the same pool recursively
  /// while the caller blocks in wait_idle() on a single-thread pool.
  void submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.push_back(std::move(task));
    }
    wake_.notify_one();
  }

  /// Blocks until the queue is empty and every worker is idle.
  void wait_idle() {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
  }

  [[nodiscard]] std::size_t size() const noexcept { return threads_.size(); }

  /// Worker count for `requested` (0 = hardware concurrency), capped by
  /// `jobs` so small batches don't spawn idle threads.
  [[nodiscard]] static std::size_t clamp_workers(std::size_t requested,
                                                 std::size_t jobs) {
    std::size_t workers = requested != 0
                              ? requested
                              : std::thread::hardware_concurrency();
    if (workers == 0) workers = 1;
    if (jobs > 0 && workers > jobs) workers = jobs;
    return workers;
  }

 private:
  void run() {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      wake_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      std::function<void()> task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
      lock.unlock();
      task();
      lock.lock();
      --active_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }

  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  std::size_t active_ = 0;
  bool stop_ = false;
};

}  // namespace unify::util
