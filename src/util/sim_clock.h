// Simulated time base shared by the infrastructure simulators and the
// control-plane channels.
//
// All latencies in the reproduction (channel RTTs, VM boot times, flow
// install delays) are charged against a SimClock so experiments are
// deterministic and independent of host speed. Benchmarks additionally
// measure host wall time around the same code paths.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace unify {

/// Microseconds of simulated time.
using SimTime = std::int64_t;

class SimClock {
 public:
  SimClock() = default;

  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Moves time forward, firing due timers in timestamp order (FIFO among
  /// equal timestamps). Precondition: delta >= 0.
  void advance(SimTime delta);

  /// Runs timers until none are pending (time jumps to each deadline).
  /// Returns the number of timers fired. Never call with a self-rearming
  /// (periodic) timer pending — it would spin forever; bound the run with
  /// advance() or step with run_next_deadline() instead.
  std::size_t run_until_idle();

  /// Jumps to the earliest pending deadline and fires everything due at it
  /// (including zero-delay timers scheduled by the fired callbacks).
  /// Returns the number of timers fired — 0 iff the clock is idle. This is
  /// the driver pump step: bounded progress even while periodic timers
  /// (heartbeats) keep the clock perpetually non-idle.
  std::size_t run_next_deadline();

  /// Schedules `fn` at now()+delay (delay < 0 is clamped to 0).
  void schedule_in(SimTime delay, std::function<void()> fn);

  [[nodiscard]] std::size_t pending_timers() const noexcept {
    return timers_.size();
  }

 private:
  struct Timer {
    SimTime deadline;
    std::uint64_t seq;  // tie-break: FIFO among equal deadlines
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Timer& a, const Timer& b) const noexcept {
      if (a.deadline != b.deadline) return a.deadline > b.deadline;
      return a.seq > b.seq;
    }
  };

  void fire_due(SimTime limit);

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Timer, std::vector<Timer>, Later> timers_;
};

}  // namespace unify
