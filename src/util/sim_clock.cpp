#include "util/sim_clock.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace unify {

void SimClock::advance(SimTime delta) {
  assert(delta >= 0);
  const SimTime target = now_ + delta;
  fire_due(target);  // fire_due moves now_ to each deadline as it fires
  // A timer callback may itself advance the clock (an RPC handler charging
  // processing time); never move time backwards.
  now_ = std::max(now_, target);
}

std::size_t SimClock::run_until_idle() {
  std::size_t fired = 0;
  while (!timers_.empty()) {
    Timer t = timers_.top();
    timers_.pop();
    if (t.deadline > now_) now_ = t.deadline;
    ++fired;
    t.fn();  // may schedule further timers; the loop picks them up
  }
  return fired;
}

std::size_t SimClock::run_next_deadline() {
  if (timers_.empty()) return 0;
  if (timers_.top().deadline > now_) now_ = timers_.top().deadline;
  std::size_t fired = 0;
  while (!timers_.empty() && timers_.top().deadline <= now_) {
    Timer t = timers_.top();
    timers_.pop();
    ++fired;
    t.fn();
  }
  return fired;
}

void SimClock::schedule_in(SimTime delay, std::function<void()> fn) {
  if (delay < 0) delay = 0;
  timers_.push(Timer{now_ + delay, next_seq_++, std::move(fn)});
}

void SimClock::fire_due(SimTime limit) {
  while (!timers_.empty() && timers_.top().deadline <= limit) {
    Timer t = timers_.top();
    timers_.pop();
    now_ = std::max(now_, t.deadline);
    t.fn();
  }
}

}  // namespace unify
