#include "util/orchestration_pool.h"

namespace unify::util {

namespace {
std::atomic<std::uint64_t> g_constructed{0};
}  // namespace

OrchestrationPool::OrchestrationPool(std::size_t workers)
    : workers_(ThreadPool::clamp_workers(workers, 0)) {
  g_constructed.fetch_add(1, std::memory_order_relaxed);
}

OrchestrationPool& OrchestrationPool::process_pool() {
  static OrchestrationPool pool;
  return pool;
}

std::uint64_t OrchestrationPool::constructed() noexcept {
  return g_constructed.load(std::memory_order_relaxed);
}

bool OrchestrationPool::started() const {
  std::lock_guard<std::mutex> lock(start_mutex_);
  return pool_ != nullptr;
}

void OrchestrationPool::ensure_started() {
  std::lock_guard<std::mutex> lock(start_mutex_);
  if (pool_ == nullptr) {
    // The calling thread of every batch acts as one runner, so the pool
    // itself only ever needs workers_ - 1 threads to reach full width.
    pool_ = std::make_unique<ThreadPool>(workers_ > 1 ? workers_ - 1 : 1);
  }
}

void OrchestrationPool::run_batch_tasks(Batch& batch) {
  const std::size_t n = batch.tasks.size();
  for (;;) {
    const std::size_t i = batch.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) return;
    batch.tasks[i]();
    if (batch.completed.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
      // Lock before notifying: the caller checks the predicate under
      // done_mutex, so this cannot race past its wait registration.
      std::lock_guard<std::mutex> lock(batch.done_mutex);
      batch.done.notify_all();
    }
  }
}

std::size_t OrchestrationPool::run_all(std::vector<std::function<void()>> tasks,
                                       std::size_t max_parallel) {
  const std::size_t n = tasks.size();
  if (n == 0) return 0;
  batches_.fetch_add(1, std::memory_order_relaxed);
  tasks_.fetch_add(n, std::memory_order_relaxed);

  std::size_t runners = workers_;
  if (max_parallel != 0 && max_parallel < runners) runners = max_parallel;
  if (runners > n) runners = n;
  if (runners <= 1) {
    for (auto& task : tasks) task();
    return 1;
  }

  ensure_started();
  auto batch = std::make_shared<Batch>();
  batch->tasks = std::move(tasks);
  // Extra runners are best-effort helpers: each drains unclaimed tasks
  // when (if ever) a pool thread picks it up. The shared_ptr keeps the
  // batch alive for helpers that fire after the caller already returned;
  // they find every task claimed and exit without touching the join.
  for (std::size_t r = 0; r + 1 < runners; ++r) {
    pool_->submit([batch] { run_batch_tasks(*batch); });
  }
  run_batch_tasks(*batch);  // the caller is a runner too
  std::unique_lock<std::mutex> lock(batch->done_mutex);
  batch->done.wait(lock, [&] {
    return batch->completed.load(std::memory_order_acquire) == n;
  });
  return runners;
}

}  // namespace unify::util
