// Small string helpers shared by codecs, ids and visualization.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace unify::strings {

/// Splits on a single character; empty fields are preserved
/// ("a,,b" -> {"a","","b"}). An empty input yields {""}.
[[nodiscard]] std::vector<std::string> split(std::string_view text, char sep);

/// Joins pieces with `sep` between them.
[[nodiscard]] std::string join(const std::vector<std::string>& pieces,
                               std::string_view sep);

/// Strips ASCII whitespace from both ends.
[[nodiscard]] std::string_view trim(std::string_view text) noexcept;

[[nodiscard]] bool starts_with(std::string_view text,
                               std::string_view prefix) noexcept;
[[nodiscard]] bool ends_with(std::string_view text,
                             std::string_view suffix) noexcept;

/// Formats a double compactly: integral values without trailing ".0",
/// otherwise up to 6 significant decimals ("2", "0.25", "13.333333").
[[nodiscard]] std::string format_double(double value);

}  // namespace unify::strings
