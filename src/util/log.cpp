#include "util/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <utility>

namespace unify::log {

namespace {

std::atomic<Level> g_level{Level::kWarn};
std::mutex g_sink_mutex;
Sink g_sink;  // empty => default stderr sink

void default_sink(Level level, std::string_view line) {
  std::fprintf(stderr, "[%s] %.*s\n", to_string(level),
               static_cast<int>(line.size()), line.data());
}

}  // namespace

const char* to_string(Level level) noexcept {
  switch (level) {
    case Level::kTrace: return "trace";
    case Level::kDebug: return "debug";
    case Level::kInfo:  return "info";
    case Level::kWarn:  return "warn";
    case Level::kError: return "error";
    case Level::kOff:   return "off";
  }
  return "unknown";
}

void set_level(Level level) noexcept { g_level.store(level); }

Level level() noexcept { return g_level.load(); }

void set_sink(Sink sink) {
  std::lock_guard lock(g_sink_mutex);
  g_sink = std::move(sink);
}

void write(Level level, std::string_view tag, std::string_view message) {
  if (level < g_level.load()) return;
  std::string line;
  line.reserve(tag.size() + message.size() + 2);
  line.append(tag);
  line.append(": ");
  line.append(message);
  std::lock_guard lock(g_sink_mutex);
  if (g_sink) {
    g_sink(level, line);
  } else {
    default_sink(level, line);
  }
}

}  // namespace unify::log
