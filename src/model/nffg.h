// The NFFG (Network Function Forwarding Graph): the joint virtualization
// data model exchanged over the Unify interface.
//
// An NFFG is both (a) a *resource view* a virtualizer exposes to its manager
// — interconnected BiS-BiS nodes with capacities — and (b) a *configuration*
// the manager writes back: NF instances placed onto BiS-BiS nodes plus
// flowrules steering traffic among infrastructure, SAP and NF ports. The
// paper models this tree in Yang; here it is a typed C++ object model with a
// JSON codec (nffg_json.h), structural validation (validate()), delta
// computation (nffg_diff.h) and multi-domain merge (nffg_merge.h).
#pragma once

#include <limits>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "model/resources.h"
#include "util/result.h"

namespace unify::model {

/// A port on a BiS-BiS, NF or SAP. Port ids are local to their owner.
struct Port {
  int id = 0;
  std::string name;

  friend bool operator==(const Port& a, const Port& b) noexcept {
    return a.id == b.id && a.name == b.name;
  }
};

/// Reference to a port of some node: BiS-BiS infra port, NF port or SAP
/// port, disambiguated by the node id.
struct PortRef {
  std::string node;  ///< owning node id ("" = unset)
  int port = 0;

  [[nodiscard]] bool empty() const noexcept { return node.empty(); }
  [[nodiscard]] std::string to_string() const {
    return node + ":" + std::to_string(port);
  }
  friend bool operator==(const PortRef& a, const PortRef& b) noexcept {
    return a.node == b.node && a.port == b.port;
  }
  friend auto operator<=>(const PortRef& a, const PortRef& b) noexcept {
    if (const auto c = a.node <=> b.node; c != 0) return c;
    return a.port <=> b.port;
  }
};

/// Lifecycle of an NF instance as reported by the infrastructure.
enum class NfStatus { kRequested, kDeploying, kRunning, kStopped, kFailed };
[[nodiscard]] const char* to_string(NfStatus status) noexcept;
[[nodiscard]] std::optional<NfStatus> nf_status_from_string(
    std::string_view name) noexcept;

/// An NF instance placed on (nested under) a BiS-BiS node.
struct NfInstance {
  std::string id;
  std::string type;  ///< catalog type name, e.g. "firewall"
  Resources requirement;
  std::vector<Port> ports;
  NfStatus status = NfStatus::kRequested;

  [[nodiscard]] bool has_port(int port) const noexcept;
  friend bool operator==(const NfInstance& a, const NfInstance& b) noexcept {
    return a.id == b.id && a.type == b.type &&
           a.requirement == b.requirement && a.ports == b.ports &&
           a.status == b.status;
  }
};

/// One traffic-steering rule inside a BiS-BiS: packets entering `in` that
/// carry `match_tag` (empty = wildcard) are forwarded to `out`, optionally
/// re-tagged to `set_tag` (empty = leave, "-" = strip). `bandwidth` is the
/// reservation charged to the underlying path.
struct Flowrule {
  std::string id;
  PortRef in;
  PortRef out;
  std::string match_tag;
  std::string set_tag;
  double bandwidth = 0;

  friend bool operator==(const Flowrule& a, const Flowrule& b) noexcept {
    return a.id == b.id && a.in == b.in && a.out == b.out &&
           a.match_tag == b.match_tag && a.set_tag == b.set_tag &&
           a.bandwidth == b.bandwidth;
  }
};

/// Big Switch with Big Software: forwarding element fused with
/// compute/storage able to host NFs and steer traffic among its ports.
struct BisBis {
  std::string id;
  std::string name;
  std::string domain;           ///< owning technology domain ("" at leaves)
  Resources capacity;
  std::vector<Port> ports;      ///< infrastructure-facing ports
  std::vector<std::string> nf_types;  ///< supported NF types; empty = any
  std::map<std::string, NfInstance> nfs;
  std::vector<Flowrule> flowrules;
  double internal_delay = 0;    ///< ms charged for crossing this node
  /// Embedding-cost bias projected by the orchestrator's health manager
  /// (0 = healthy domain). Orchestrator-local annotation: deliberately not
  /// serialized to JSON and not part of Nffg equality, so slices stay
  /// byte-identical and dirty tracking is unaffected.
  double health_penalty = 0;

  [[nodiscard]] bool has_port(int port) const noexcept;
  [[nodiscard]] bool supports_nf_type(const std::string& type) const noexcept;
  [[nodiscard]] const Flowrule* find_flowrule(
      const std::string& id) const noexcept;

  /// Sum of requirements of NFs currently placed here.
  [[nodiscard]] Resources allocated() const noexcept;
  /// capacity - allocated().
  [[nodiscard]] Resources residual() const noexcept;
};

/// Service Access Point: where customer traffic enters/leaves the graph.
/// Modelled as a node with a single port 0.
struct Sap {
  std::string id;
  std::string name;
};

/// A unidirectional link between two ports (BiS-BiS<->BiS-BiS or
/// SAP<->BiS-BiS). `reserved` tracks bandwidth already promised to chains.
struct Link {
  std::string id;
  PortRef from;
  PortRef to;
  LinkAttrs attrs;
  double reserved = 0;

  [[nodiscard]] double residual_bandwidth() const noexcept {
    return attrs.bandwidth - reserved;
  }
};

/// End-to-end service requirement carried inside a virtualizer config (the
/// paper's "bandwidth or delay constraints between arbitrary elements"):
/// annotates the config so a lower-layer orchestrator can re-map the
/// placement at its own granularity while honouring the constraint.
struct ServiceHint {
  std::string id;
  std::string from_sap;
  std::string to_sap;
  double max_delay = std::numeric_limits<double>::infinity();  ///< ms
  double min_bandwidth = 0;                                    ///< Mbit/s

  friend bool operator==(const ServiceHint& a, const ServiceHint& b) noexcept {
    return a.id == b.id && a.from_sap == b.from_sap && a.to_sap == b.to_sap &&
           a.max_delay == b.max_delay && a.min_bandwidth == b.min_bandwidth;
  }
};

/// Placement constraint carried inside a virtualizer config alongside the
/// hints: restricts where the NFs of the config may be re-mapped by lower
/// layers.
enum class ConstraintKind {
  kAntiAffinity,  ///< nf_a and nf_b must land on different BiS-BiS
  kPin,           ///< nf_a must land exactly on `host`
  kForbid,        ///< nf_a must not land on `host`
};
[[nodiscard]] const char* to_string(ConstraintKind kind) noexcept;

struct PlacementConstraint {
  ConstraintKind kind = ConstraintKind::kAntiAffinity;
  std::string nf_a;
  std::string nf_b;  ///< anti-affinity peer (unused otherwise)
  std::string host;  ///< pin/forbid target (unused for anti-affinity)

  friend bool operator==(const PlacementConstraint& a,
                         const PlacementConstraint& b) noexcept {
    return a.kind == b.kind && a.nf_a == b.nf_a && a.nf_b == b.nf_b &&
           a.host == b.host;
  }
};

/// Statistics snapshot used by views, logs and benchmarks.
struct NffgStats {
  std::size_t bisbis_count = 0;
  std::size_t sap_count = 0;
  std::size_t link_count = 0;
  std::size_t nf_count = 0;
  std::size_t flowrule_count = 0;
  Resources total_capacity;
  Resources total_allocated;
};

/// The NFFG container. Node/link ids are strings unique within their kind.
/// Maps keep entities sorted by id so iteration, serialization and diffs
/// are deterministic.
class Nffg {
 public:
  Nffg() = default;
  explicit Nffg(std::string id, std::string name = {})
      : id_(std::move(id)), name_(std::move(name)) {}

  [[nodiscard]] const std::string& id() const noexcept { return id_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  void set_id(std::string id) { id_ = std::move(id); }
  void set_name(std::string name) { name_ = std::move(name); }

  // ----------------------------------------------------------- BiS-BiS

  /// Fails with kAlreadyExists on duplicate id (across all node kinds).
  Result<void> add_bisbis(BisBis node);
  [[nodiscard]] const BisBis* find_bisbis(const std::string& id) const noexcept;
  [[nodiscard]] BisBis* find_bisbis(const std::string& id) noexcept;
  Result<void> remove_bisbis(const std::string& id);
  [[nodiscard]] const std::map<std::string, BisBis>& bisbis() const noexcept {
    return bisbis_;
  }
  [[nodiscard]] std::map<std::string, BisBis>& bisbis() noexcept {
    return bisbis_;
  }

  // --------------------------------------------------------------- SAP

  Result<void> add_sap(Sap sap);
  [[nodiscard]] const Sap* find_sap(const std::string& id) const noexcept;
  Result<void> remove_sap(const std::string& id);
  [[nodiscard]] const std::map<std::string, Sap>& saps() const noexcept {
    return saps_;
  }

  // -------------------------------------------------------------- link

  /// Endpoints must already exist; fails with kNotFound otherwise.
  Result<void> add_link(Link link);
  /// Adds `id` and `id + "-back"` in opposite directions.
  Result<void> add_bidirectional_link(const std::string& id, PortRef a,
                                      PortRef b, LinkAttrs attrs);
  [[nodiscard]] const Link* find_link(const std::string& id) const noexcept;
  [[nodiscard]] Link* find_link(const std::string& id) noexcept;
  Result<void> remove_link(const std::string& id);
  [[nodiscard]] const std::map<std::string, Link>& links() const noexcept {
    return links_;
  }
  [[nodiscard]] std::map<std::string, Link>& links() noexcept {
    return links_;
  }

  // ----------------------------------------------------- NFs, flowrules

  /// Places an NF instance onto a BiS-BiS. Enforces id uniqueness among the
  /// node's NFs and (unless `force`) residual capacity and type support.
  Result<void> place_nf(const std::string& bisbis_id, NfInstance nf,
                        bool force = false);
  Result<void> remove_nf(const std::string& bisbis_id, const std::string& nf_id);
  /// Locates an NF anywhere in the graph; returns its host's id too.
  [[nodiscard]] std::optional<std::pair<std::string, const NfInstance*>>
  find_nf(const std::string& nf_id) const noexcept;

  /// Installs a flowrule on a BiS-BiS; endpoints are validated to be ports
  /// of that node, of its NFs, or of SAP/BiS-BiS neighbours via links.
  Result<void> add_flowrule(const std::string& bisbis_id, Flowrule rule);
  Result<void> remove_flowrule(const std::string& bisbis_id,
                               const std::string& rule_id);

  // ------------------------------------------------------------- hints

  /// Attaches a service hint (id must be unique, SAPs must exist).
  Result<void> add_hint(ServiceHint hint);
  Result<void> remove_hint(const std::string& hint_id);
  [[nodiscard]] const std::vector<ServiceHint>& hints() const noexcept {
    return hints_;
  }

  /// Attaches a placement constraint (referenced NFs must already be
  /// placed somewhere in this config).
  Result<void> add_constraint(PlacementConstraint constraint);
  [[nodiscard]] const std::vector<PlacementConstraint>& constraints()
      const noexcept {
    return constraints_;
  }

  // ------------------------------------------------------------- whole

  /// Strips all service state — NFs, flowrules, hints, placement
  /// constraints and link reservations — leaving pure infrastructure
  /// (BiS-BiSes, SAPs and links at full capacity). Used by layers that
  /// re-derive the full service configuration themselves and need a clean
  /// base even when the fetched view still carries deployed services.
  void clear_service_state();

  /// True when any node kind already uses `id`.
  [[nodiscard]] bool has_node(const std::string& id) const noexcept;

  /// Links incident to a node (either direction).
  [[nodiscard]] std::vector<const Link*> links_of(
      const std::string& node_id) const;

  [[nodiscard]] NffgStats stats() const noexcept;

  /// Structural validation; returns every problem found, empty when sound.
  /// Checks: link endpoints exist with valid ports, flowrule port
  /// references resolve, no BiS-BiS is compute-overcommitted, no link is
  /// bandwidth-overcommitted, NF/flowrule ids unique per node.
  [[nodiscard]] std::vector<std::string> validate() const;

  friend bool operator==(const Nffg& a, const Nffg& b);

 private:
  Result<void> check_port_ref(const std::string& bisbis_id,
                              const PortRef& ref) const;

  std::string id_;
  std::string name_;
  std::map<std::string, BisBis> bisbis_;
  std::map<std::string, Sap> saps_;
  std::map<std::string, Link> links_;
  std::vector<ServiceHint> hints_;
  std::vector<PlacementConstraint> constraints_;
};

}  // namespace unify::model
