// Structural validation of an NFFG. Collects every problem instead of
// stopping at the first so a manager can report a complete diagnosis of a
// rejected configuration.
#include <set>

#include "model/nffg.h"

namespace unify::model {

std::vector<std::string> Nffg::validate() const {
  std::vector<std::string> problems;
  const auto complain = [&problems](std::string text) {
    problems.push_back(std::move(text));
  };

  // --- node-level checks
  for (const auto& [bb_id, bb] : bisbis_) {
    if (bb.id != bb_id) {
      complain("BiS-BiS map key " + bb_id + " != embedded id " + bb.id);
    }
    std::set<int> port_ids;
    for (const Port& p : bb.ports) {
      if (!port_ids.insert(p.id).second) {
        complain("BiS-BiS " + bb_id + " has duplicate port " +
                 std::to_string(p.id));
      }
    }
    if (bb.capacity.negative()) {
      complain("BiS-BiS " + bb_id + " has negative capacity");
    }
    if (bb.residual().negative()) {
      complain("BiS-BiS " + bb_id + " is compute-overcommitted: residual " +
               bb.residual().to_string());
    }
    for (const auto& [nf_id, nf] : bb.nfs) {
      if (nf.id != nf_id) {
        complain("NF map key " + nf_id + " != embedded id " + nf.id);
      }
      if (nf.requirement.negative()) {
        complain("NF " + nf_id + " has negative requirement");
      }
      std::set<int> nf_ports;
      for (const Port& p : nf.ports) {
        if (!nf_ports.insert(p.id).second) {
          complain("NF " + nf_id + " has duplicate port " +
                   std::to_string(p.id));
        }
      }
      if (!bb.supports_nf_type(nf.type)) {
        complain("NF " + nf_id + " type " + nf.type + " unsupported on " +
                 bb_id);
      }
    }
    // Flowrule references and id uniqueness.
    std::set<std::string> rule_ids;
    for (const Flowrule& fr : bb.flowrules) {
      if (!rule_ids.insert(fr.id).second) {
        complain("BiS-BiS " + bb_id + " has duplicate flowrule " + fr.id);
      }
      if (fr.bandwidth < 0) {
        complain("flowrule " + fr.id + " on " + bb_id +
                 " has negative bandwidth");
      }
      for (const PortRef* ref : {&fr.in, &fr.out}) {
        const bool own_port = ref->node == bb_id && bb.has_port(ref->port);
        const auto nf_it = bb.nfs.find(ref->node);
        const bool nf_port =
            nf_it != bb.nfs.end() && nf_it->second.has_port(ref->port);
        if (!own_port && !nf_port) {
          complain("flowrule " + fr.id + " on " + bb_id +
                   " references unresolvable port " + ref->to_string());
        }
      }
    }
  }

  // --- link-level checks
  for (const auto& [link_id, link] : links_) {
    if (link.id != link_id) {
      complain("link map key " + link_id + " != embedded id " + link.id);
    }
    for (const PortRef* ref : {&link.from, &link.to}) {
      if (const BisBis* bb = find_bisbis(ref->node)) {
        if (!bb->has_port(ref->port)) {
          complain("link " + link_id + " endpoint " + ref->to_string() +
                   " not a port of BiS-BiS " + ref->node);
        }
      } else if (find_sap(ref->node) != nullptr) {
        if (ref->port != 0) {
          complain("link " + link_id + " endpoint " + ref->to_string() +
                   " invalid: SAPs only expose port 0");
        }
      } else {
        complain("link " + link_id + " endpoint node " + ref->node +
                 " does not exist");
      }
    }
    if (link.attrs.bandwidth < 0 || link.attrs.delay < 0) {
      complain("link " + link_id + " has negative attributes");
    }
    if (link.reserved < 0) {
      complain("link " + link_id + " has negative reservation");
    }
    if (link.reserved > link.attrs.bandwidth) {
      complain("link " + link_id + " is bandwidth-overcommitted: " +
               strings::format_double(link.reserved) + " > " +
               strings::format_double(link.attrs.bandwidth));
    }
  }

  return problems;
}

}  // namespace unify::model
