#include "model/topology_index.h"

namespace unify::model {

TopologyIndex::TopologyIndex(const Nffg& nffg) : nffg_(&nffg) {
  for (const auto& [id, bb] : nffg.bisbis()) {
    index_.emplace(id,
                   graph_.add_node(TopoNode{id, false, bb.internal_delay}));
  }
  for (const auto& [id, sap] : nffg.saps()) {
    index_.emplace(id, graph_.add_node(TopoNode{id, true, 0}));
  }
  for (const auto& [id, link] : nffg.links()) {
    const auto from = index_.find(link.from.node);
    const auto to = index_.find(link.to.node);
    if (from == index_.end() || to == index_.end()) continue;  // dangling
    // Weight charges the internal switching delay of the node the edge
    // arrives at (0 for SAPs); endpoint asymmetry is negligible for
    // ranking paths. The head's health penalty is kept as a live pointer
    // (stable: Nffg stores nodes in a node-based std::map) so scans bias
    // against degraded domains without an index rebuild.
    const double weight =
        link.attrs.delay + graph_.node(to->second).internal_delay;
    const BisBis* head = nffg.find_bisbis(link.to.node);
    graph_.add_edge(
        from->second, to->second,
        TopoEdge{id, &link, weight,
                 head == nullptr ? nullptr : &head->health_penalty});
  }
}

graph::NodeId TopologyIndex::node_of(const std::string& id) const noexcept {
  const auto it = index_.find(id);
  return it == index_.end() ? graph::kInvalidId : it->second;
}

graph::EdgeScanFn TopologyIndex::scan_by_delay(double min_bw) const {
  return [scan = delay_scan(min_bw)](graph::NodeId node,
                                     const graph::EdgeVisitFn& visit) {
    scan(node, visit);
  };
}

graph::EdgeScanFn TopologyIndex::scan_by_hops(double min_bw) const {
  return [this, min_bw](graph::NodeId node,
                        const graph::EdgeVisitFn& visit) {
    for (const graph::EdgeId e : graph_.out_edges(node)) {
      const auto& edge = graph_.edge(e);
      if (edge.data.link->residual_bandwidth() < min_bw) continue;
      visit(e, edge.to, 1.0);
    }
  };
}

double path_delay(const TopologyIndex& index, const graph::Path& path) {
  double total = 0;
  for (const graph::EdgeId e : path.edges) {
    total += index.link_of(e).attrs.delay;
  }
  // Internal delay of transited BiS-BiS nodes (exclude both endpoints).
  for (std::size_t i = 1; i + 1 < path.nodes.size(); ++i) {
    total += index.graph().node(path.nodes[i]).internal_delay;
  }
  return total;
}

}  // namespace unify::model
