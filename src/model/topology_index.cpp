#include "model/topology_index.h"

namespace unify::model {

TopologyIndex::TopologyIndex(const Nffg& nffg) : nffg_(&nffg) {
  for (const auto& [id, bb] : nffg.bisbis()) {
    index_.emplace(id, graph_.add_node(TopoNode{id, false}));
  }
  for (const auto& [id, sap] : nffg.saps()) {
    index_.emplace(id, graph_.add_node(TopoNode{id, true}));
  }
  for (const auto& [id, link] : nffg.links()) {
    const auto from = index_.find(link.from.node);
    const auto to = index_.find(link.to.node);
    if (from == index_.end() || to == index_.end()) continue;  // dangling
    graph_.add_edge(from->second, to->second, TopoEdge{id});
  }
}

graph::NodeId TopologyIndex::node_of(const std::string& id) const noexcept {
  const auto it = index_.find(id);
  return it == index_.end() ? graph::kInvalidId : it->second;
}

const Link& TopologyIndex::link_of(graph::EdgeId edge) const noexcept {
  return *nffg_->find_link(graph_.edge(edge).data.link_id);
}

graph::EdgeScanFn TopologyIndex::scan_by_delay(double min_bw) const {
  return [this, min_bw](graph::NodeId node,
                        const graph::EdgeVisitFn& visit) {
    for (const graph::EdgeId e : graph_.out_edges(node)) {
      const auto& edge = graph_.edge(e);
      const Link& link = link_of(e);
      if (link.residual_bandwidth() < min_bw) {
        continue;
      }
      double weight = link.attrs.delay;
      // Charge the internal switching delay of the node we arrive at (if it
      // is a BiS-BiS); endpoint asymmetry is negligible for ranking paths.
      if (const BisBis* bb = nffg_->find_bisbis(graph_.node(edge.to).id)) {
        weight += bb->internal_delay;
      }
      visit(e, edge.to, weight);
    }
  };
}

graph::EdgeScanFn TopologyIndex::scan_by_hops(double min_bw) const {
  return [this, min_bw](graph::NodeId node,
                        const graph::EdgeVisitFn& visit) {
    for (const graph::EdgeId e : graph_.out_edges(node)) {
      const auto& edge = graph_.edge(e);
      const Link& link = link_of(e);
      if (link.residual_bandwidth() < min_bw) {
        continue;
      }
      visit(e, edge.to, 1.0);
    }
  };
}

double path_delay(const TopologyIndex& index, const graph::Path& path) {
  double total = 0;
  for (const graph::EdgeId e : path.edges) {
    total += index.link_of(e).attrs.delay;
  }
  // Internal delay of transited BiS-BiS nodes (exclude both endpoints).
  for (std::size_t i = 1; i + 1 < path.nodes.size(); ++i) {
    if (const BisBis* bb =
            index.nffg().find_bisbis(index.id_of(path.nodes[i]))) {
      total += bb->internal_delay;
    }
  }
  return total;
}

}  // namespace unify::model
