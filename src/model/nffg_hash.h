// Structural content hash over an NFFG's serialized identity.
//
// content_hash() folds exactly the information to_json() serializes (and
// nothing more) into a 64-bit FNV-1a digest, so two NFFGs hash equal iff
// their JSON configs are byte-identical (modulo the 2^-64 collision odds).
// The orchestrator's push path and the virtualizer use it for dirty
// tracking: a clean section is detected from the hash without building the
// JSON string, which on large views is the dominant cost of a no-op push.
//
// Contract (DESIGN.md §11): every field to_json() emits — including fields
// it omits conditionally, since the omission is a deterministic function of
// the value — feeds the hash; orchestrator-local annotations that are not
// serialized (BisBis::health_penalty) are excluded. Doubles are hashed by
// bit pattern, matching JSON's round-trip-exact number printing.
#pragma once

#include <cstdint>

#include "model/nffg.h"

namespace unify::model {

/// 64-bit FNV-1a offset basis; the running state of a hash in progress.
inline constexpr std::uint64_t kHashSeed = 0xCBF29CE484222325ULL;

/// Digest of the whole NFFG (everything to_json() serializes).
[[nodiscard]] std::uint64_t content_hash(const Nffg& nffg) noexcept;

}  // namespace unify::model
