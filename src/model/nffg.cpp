#include "model/nffg.h"

#include <algorithm>

namespace unify::model {

// ------------------------------------------------------------- NfStatus

const char* to_string(NfStatus status) noexcept {
  switch (status) {
    case NfStatus::kRequested: return "requested";
    case NfStatus::kDeploying: return "deploying";
    case NfStatus::kRunning:   return "running";
    case NfStatus::kStopped:   return "stopped";
    case NfStatus::kFailed:    return "failed";
  }
  return "unknown";
}

std::optional<NfStatus> nf_status_from_string(std::string_view name) noexcept {
  if (name == "requested") return NfStatus::kRequested;
  if (name == "deploying") return NfStatus::kDeploying;
  if (name == "running") return NfStatus::kRunning;
  if (name == "stopped") return NfStatus::kStopped;
  if (name == "failed") return NfStatus::kFailed;
  return std::nullopt;
}

// ----------------------------------------------------------- NfInstance

bool NfInstance::has_port(int port) const noexcept {
  return std::any_of(ports.begin(), ports.end(),
                     [port](const Port& p) { return p.id == port; });
}

// --------------------------------------------------------------- BisBis

bool BisBis::has_port(int port) const noexcept {
  return std::any_of(ports.begin(), ports.end(),
                     [port](const Port& p) { return p.id == port; });
}

bool BisBis::supports_nf_type(const std::string& type) const noexcept {
  if (nf_types.empty()) return true;
  return std::find(nf_types.begin(), nf_types.end(), type) != nf_types.end();
}

const Flowrule* BisBis::find_flowrule(const std::string& rule_id) const noexcept {
  for (const Flowrule& fr : flowrules) {
    if (fr.id == rule_id) return &fr;
  }
  return nullptr;
}

Resources BisBis::allocated() const noexcept {
  Resources total;
  for (const auto& [id, nf] : nfs) total += nf.requirement;
  return total;
}

Resources BisBis::residual() const noexcept { return capacity - allocated(); }

// ----------------------------------------------------------------- Nffg

void Nffg::clear_service_state() {
  for (auto& [id, bb] : bisbis_) {
    bb.nfs.clear();
    bb.flowrules.clear();
  }
  for (auto& [id, link] : links_) link.reserved = 0;
  hints_.clear();
  constraints_.clear();
}

bool Nffg::has_node(const std::string& id) const noexcept {
  return bisbis_.count(id) != 0 || saps_.count(id) != 0;
}

Result<void> Nffg::add_bisbis(BisBis node) {
  if (node.id.empty()) {
    return Error{ErrorCode::kInvalidArgument, "BiS-BiS id must not be empty"};
  }
  if (has_node(node.id)) {
    return Error{ErrorCode::kAlreadyExists, "node " + node.id};
  }
  bisbis_.emplace(node.id, std::move(node));
  return Result<void>::success();
}

const BisBis* Nffg::find_bisbis(const std::string& id) const noexcept {
  const auto it = bisbis_.find(id);
  return it == bisbis_.end() ? nullptr : &it->second;
}

BisBis* Nffg::find_bisbis(const std::string& id) noexcept {
  const auto it = bisbis_.find(id);
  return it == bisbis_.end() ? nullptr : &it->second;
}

Result<void> Nffg::remove_bisbis(const std::string& id) {
  if (bisbis_.erase(id) == 0) {
    return Error{ErrorCode::kNotFound, "BiS-BiS " + id};
  }
  // Drop dangling links.
  for (auto it = links_.begin(); it != links_.end();) {
    if (it->second.from.node == id || it->second.to.node == id) {
      it = links_.erase(it);
    } else {
      ++it;
    }
  }
  return Result<void>::success();
}

Result<void> Nffg::add_sap(Sap sap) {
  if (sap.id.empty()) {
    return Error{ErrorCode::kInvalidArgument, "SAP id must not be empty"};
  }
  if (has_node(sap.id)) {
    return Error{ErrorCode::kAlreadyExists, "node " + sap.id};
  }
  saps_.emplace(sap.id, std::move(sap));
  return Result<void>::success();
}

const Sap* Nffg::find_sap(const std::string& id) const noexcept {
  const auto it = saps_.find(id);
  return it == saps_.end() ? nullptr : &it->second;
}

Result<void> Nffg::remove_sap(const std::string& id) {
  if (saps_.erase(id) == 0) {
    return Error{ErrorCode::kNotFound, "SAP " + id};
  }
  for (auto it = links_.begin(); it != links_.end();) {
    if (it->second.from.node == id || it->second.to.node == id) {
      it = links_.erase(it);
    } else {
      ++it;
    }
  }
  return Result<void>::success();
}

namespace {

/// A link endpoint is valid when it names a SAP (port 0) or an existing
/// infra port of a BiS-BiS.
Result<void> check_link_endpoint(const Nffg& g, const PortRef& ref) {
  if (ref.empty()) {
    return Error{ErrorCode::kInvalidArgument, "empty link endpoint"};
  }
  if (g.find_sap(ref.node) != nullptr) {
    if (ref.port != 0) {
      return Error{ErrorCode::kInvalidArgument,
                   "SAP " + ref.node + " only has port 0"};
    }
    return Result<void>::success();
  }
  if (const BisBis* bb = g.find_bisbis(ref.node)) {
    if (!bb->has_port(ref.port)) {
      return Error{ErrorCode::kNotFound,
                   "port " + ref.to_string() + " not on BiS-BiS"};
    }
    return Result<void>::success();
  }
  return Error{ErrorCode::kNotFound, "link endpoint node " + ref.node};
}

}  // namespace

Result<void> Nffg::add_link(Link link) {
  if (link.id.empty()) {
    return Error{ErrorCode::kInvalidArgument, "link id must not be empty"};
  }
  if (links_.count(link.id) != 0) {
    return Error{ErrorCode::kAlreadyExists, "link " + link.id};
  }
  UNIFY_RETURN_IF_ERROR(check_link_endpoint(*this, link.from));
  UNIFY_RETURN_IF_ERROR(check_link_endpoint(*this, link.to));
  if (link.attrs.bandwidth < 0 || link.attrs.delay < 0 || link.reserved < 0) {
    return Error{ErrorCode::kInvalidArgument,
                 "link " + link.id + " has negative attributes"};
  }
  links_.emplace(link.id, std::move(link));
  return Result<void>::success();
}

Result<void> Nffg::add_bidirectional_link(const std::string& id, PortRef a,
                                          PortRef b, LinkAttrs attrs) {
  UNIFY_RETURN_IF_ERROR(add_link(Link{id, a, b, attrs, 0}));
  auto back = add_link(Link{id + "-back", b, a, attrs, 0});
  if (!back.ok()) {
    (void)remove_link(id);  // keep the pair atomic
    return back;
  }
  return Result<void>::success();
}

const Link* Nffg::find_link(const std::string& id) const noexcept {
  const auto it = links_.find(id);
  return it == links_.end() ? nullptr : &it->second;
}

Link* Nffg::find_link(const std::string& id) noexcept {
  const auto it = links_.find(id);
  return it == links_.end() ? nullptr : &it->second;
}

Result<void> Nffg::remove_link(const std::string& id) {
  if (links_.erase(id) == 0) {
    return Error{ErrorCode::kNotFound, "link " + id};
  }
  return Result<void>::success();
}

Result<void> Nffg::place_nf(const std::string& bisbis_id, NfInstance nf,
                            bool force) {
  BisBis* bb = find_bisbis(bisbis_id);
  if (bb == nullptr) {
    return Error{ErrorCode::kNotFound, "BiS-BiS " + bisbis_id};
  }
  if (nf.id.empty()) {
    return Error{ErrorCode::kInvalidArgument, "NF id must not be empty"};
  }
  if (bb->nfs.count(nf.id) != 0) {
    return Error{ErrorCode::kAlreadyExists,
                 "NF " + nf.id + " on " + bisbis_id};
  }
  if (!force) {
    if (!bb->supports_nf_type(nf.type)) {
      return Error{ErrorCode::kRejected, "BiS-BiS " + bisbis_id +
                                             " does not support NF type " +
                                             nf.type};
    }
    if (!bb->residual().fits(nf.requirement)) {
      return Error{ErrorCode::kResourceExhausted,
                   "BiS-BiS " + bisbis_id + " residual " +
                       bb->residual().to_string() + " < requirement " +
                       nf.requirement.to_string()};
    }
  }
  bb->nfs.emplace(nf.id, std::move(nf));
  return Result<void>::success();
}

Result<void> Nffg::remove_nf(const std::string& bisbis_id,
                             const std::string& nf_id) {
  BisBis* bb = find_bisbis(bisbis_id);
  if (bb == nullptr) {
    return Error{ErrorCode::kNotFound, "BiS-BiS " + bisbis_id};
  }
  if (bb->nfs.erase(nf_id) == 0) {
    return Error{ErrorCode::kNotFound, "NF " + nf_id + " on " + bisbis_id};
  }
  // Remove flowrules touching the NF's ports.
  auto& rules = bb->flowrules;
  rules.erase(std::remove_if(rules.begin(), rules.end(),
                             [&](const Flowrule& fr) {
                               return fr.in.node == nf_id ||
                                      fr.out.node == nf_id;
                             }),
              rules.end());
  return Result<void>::success();
}

std::optional<std::pair<std::string, const NfInstance*>> Nffg::find_nf(
    const std::string& nf_id) const noexcept {
  for (const auto& [bb_id, bb] : bisbis_) {
    const auto it = bb.nfs.find(nf_id);
    if (it != bb.nfs.end()) return std::make_pair(bb_id, &it->second);
  }
  return std::nullopt;
}

Result<void> Nffg::check_port_ref(const std::string& bisbis_id,
                                  const PortRef& ref) const {
  const BisBis* bb = find_bisbis(bisbis_id);
  if (bb == nullptr) {
    return Error{ErrorCode::kNotFound, "BiS-BiS " + bisbis_id};
  }
  if (ref.empty()) {
    return Error{ErrorCode::kInvalidArgument, "empty flowrule port"};
  }
  // Own infra port.
  if (ref.node == bisbis_id) {
    if (!bb->has_port(ref.port)) {
      return Error{ErrorCode::kNotFound,
                   "port " + ref.to_string() + " not on " + bisbis_id};
    }
    return Result<void>::success();
  }
  // Port of an NF hosted here.
  const auto nf_it = bb->nfs.find(ref.node);
  if (nf_it != bb->nfs.end()) {
    if (!nf_it->second.has_port(ref.port)) {
      return Error{ErrorCode::kNotFound,
                   "NF port " + ref.to_string() + " missing"};
    }
    return Result<void>::success();
  }
  return Error{ErrorCode::kInvalidArgument,
               "flowrule port " + ref.to_string() + " is neither a port of " +
                   bisbis_id + " nor of an NF hosted on it"};
}

Result<void> Nffg::add_flowrule(const std::string& bisbis_id, Flowrule rule) {
  BisBis* bb = find_bisbis(bisbis_id);
  if (bb == nullptr) {
    return Error{ErrorCode::kNotFound, "BiS-BiS " + bisbis_id};
  }
  if (rule.id.empty()) {
    return Error{ErrorCode::kInvalidArgument, "flowrule id must not be empty"};
  }
  if (bb->find_flowrule(rule.id) != nullptr) {
    return Error{ErrorCode::kAlreadyExists,
                 "flowrule " + rule.id + " on " + bisbis_id};
  }
  if (rule.bandwidth < 0) {
    return Error{ErrorCode::kInvalidArgument,
                 "flowrule " + rule.id + " has negative bandwidth"};
  }
  UNIFY_RETURN_IF_ERROR(check_port_ref(bisbis_id, rule.in));
  UNIFY_RETURN_IF_ERROR(check_port_ref(bisbis_id, rule.out));
  bb->flowrules.push_back(std::move(rule));
  return Result<void>::success();
}

Result<void> Nffg::remove_flowrule(const std::string& bisbis_id,
                                   const std::string& rule_id) {
  BisBis* bb = find_bisbis(bisbis_id);
  if (bb == nullptr) {
    return Error{ErrorCode::kNotFound, "BiS-BiS " + bisbis_id};
  }
  auto& rules = bb->flowrules;
  const auto it =
      std::find_if(rules.begin(), rules.end(),
                   [&](const Flowrule& fr) { return fr.id == rule_id; });
  if (it == rules.end()) {
    return Error{ErrorCode::kNotFound,
                 "flowrule " + rule_id + " on " + bisbis_id};
  }
  rules.erase(it);
  return Result<void>::success();
}

Result<void> Nffg::add_hint(ServiceHint hint) {
  if (hint.id.empty()) {
    return Error{ErrorCode::kInvalidArgument, "hint id must not be empty"};
  }
  for (const ServiceHint& existing : hints_) {
    if (existing.id == hint.id) {
      return Error{ErrorCode::kAlreadyExists, "hint " + hint.id};
    }
  }
  for (const std::string* sap : {&hint.from_sap, &hint.to_sap}) {
    if (saps_.count(*sap) == 0) {
      return Error{ErrorCode::kNotFound, "hint SAP " + *sap};
    }
  }
  hints_.push_back(std::move(hint));
  return Result<void>::success();
}

Result<void> Nffg::remove_hint(const std::string& hint_id) {
  for (auto it = hints_.begin(); it != hints_.end(); ++it) {
    if (it->id == hint_id) {
      hints_.erase(it);
      return Result<void>::success();
    }
  }
  return Error{ErrorCode::kNotFound, "hint " + hint_id};
}

const char* to_string(ConstraintKind kind) noexcept {
  switch (kind) {
    case ConstraintKind::kAntiAffinity: return "anti-affinity";
    case ConstraintKind::kPin:          return "pin";
    case ConstraintKind::kForbid:       return "forbid";
  }
  return "unknown";
}

Result<void> Nffg::add_constraint(PlacementConstraint constraint) {
  if (!find_nf(constraint.nf_a).has_value()) {
    return Error{ErrorCode::kNotFound, "constraint NF " + constraint.nf_a};
  }
  if (constraint.kind == ConstraintKind::kAntiAffinity) {
    if (!find_nf(constraint.nf_b).has_value()) {
      return Error{ErrorCode::kNotFound, "constraint NF " + constraint.nf_b};
    }
  } else if (constraint.host.empty()) {
    return Error{ErrorCode::kInvalidArgument,
                 "pin/forbid constraints need a host"};
  }
  constraints_.push_back(std::move(constraint));
  return Result<void>::success();
}

std::vector<const Link*> Nffg::links_of(const std::string& node_id) const {
  std::vector<const Link*> out;
  for (const auto& [id, link] : links_) {
    if (link.from.node == node_id || link.to.node == node_id) {
      out.push_back(&link);
    }
  }
  return out;
}

NffgStats Nffg::stats() const noexcept {
  NffgStats s;
  s.bisbis_count = bisbis_.size();
  s.sap_count = saps_.size();
  s.link_count = links_.size();
  for (const auto& [id, bb] : bisbis_) {
    s.nf_count += bb.nfs.size();
    s.flowrule_count += bb.flowrules.size();
    s.total_capacity += bb.capacity;
    s.total_allocated += bb.allocated();
  }
  return s;
}

bool operator==(const Nffg& a, const Nffg& b) {
  if (a.id_ != b.id_ || a.name_ != b.name_) return false;
  if (a.hints_ != b.hints_) return false;
  if (a.constraints_ != b.constraints_) return false;
  if (a.saps_.size() != b.saps_.size() ||
      a.bisbis_.size() != b.bisbis_.size() ||
      a.links_.size() != b.links_.size()) {
    return false;
  }
  for (const auto& [id, sap] : a.saps_) {
    const Sap* other = b.find_sap(id);
    if (other == nullptr || other->name != sap.name) return false;
  }
  for (const auto& [id, link] : a.links_) {
    const Link* other = b.find_link(id);
    if (other == nullptr || !(other->from == link.from) ||
        !(other->to == link.to) || !(other->attrs == link.attrs) ||
        other->reserved != link.reserved) {
      return false;
    }
  }
  for (const auto& [id, bb] : a.bisbis_) {
    const BisBis* o = b.find_bisbis(id);
    if (o == nullptr || o->name != bb.name || o->domain != bb.domain ||
        !(o->capacity == bb.capacity) || o->ports != bb.ports ||
        o->nf_types != bb.nf_types || o->internal_delay != bb.internal_delay ||
        o->nfs != bb.nfs || o->flowrules != bb.flowrules) {
      return false;
    }
  }
  return true;
}

}  // namespace unify::model
