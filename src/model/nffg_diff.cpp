#include "model/nffg_diff.h"

#include <algorithm>
#include <set>

#include "model/nffg_json.h"

namespace unify::model {

namespace {

/// NF equality for diffing: status is operational state, not configuration.
bool nf_config_equal(const NfInstance& a, const NfInstance& b) noexcept {
  return a.type == b.type && a.requirement == b.requirement &&
         a.ports == b.ports;
}

}  // namespace

Result<ConfigDelta> diff(const Nffg& base, const Nffg& target) {
  ConfigDelta delta;
  // The delta is meaningful only over identical infrastructure.
  for (const auto& [id, bb] : target.bisbis()) {
    if (base.find_bisbis(id) == nullptr) {
      return Error{ErrorCode::kInvalidArgument,
                   "target has BiS-BiS " + id + " unknown to base"};
    }
  }
  for (const auto& [id, base_bb] : base.bisbis()) {
    const BisBis* target_bb = target.find_bisbis(id);
    if (target_bb == nullptr) {
      return Error{ErrorCode::kInvalidArgument,
                   "base has BiS-BiS " + id + " unknown to target"};
    }

    // NFs.
    std::set<std::string> replaced_nfs;  // removed or modified on this node
    for (const auto& [nf_id, base_nf] : base_bb.nfs) {
      const auto it = target_bb->nfs.find(nf_id);
      if (it == target_bb->nfs.end()) {
        delta.nf_removals.push_back(NfRemoval{id, nf_id});
        replaced_nfs.insert(nf_id);
      } else if (!nf_config_equal(base_nf, it->second)) {
        delta.nf_removals.push_back(NfRemoval{id, nf_id});
        delta.nf_placements.push_back(NfPlacement{id, it->second});
        replaced_nfs.insert(nf_id);
      }
    }
    for (const auto& [nf_id, target_nf] : target_bb->nfs) {
      if (base_bb.nfs.count(nf_id) == 0) {
        delta.nf_placements.push_back(NfPlacement{id, target_nf});
      }
    }

    // Flowrules (identified by id within the node). A rule whose endpoints
    // touch a replaced NF must be reinstalled even when textually
    // unchanged: applying the NF removal implicitly tears the rule down.
    const auto touches_replaced = [&](const Flowrule& fr) {
      return replaced_nfs.count(fr.in.node) != 0 ||
             replaced_nfs.count(fr.out.node) != 0;
    };
    for (const Flowrule& base_fr : base_bb.flowrules) {
      const Flowrule* target_fr = target_bb->find_flowrule(base_fr.id);
      if (target_fr == nullptr) {
        delta.rule_removals.push_back(RuleRemoval{id, base_fr.id});
      } else if (!(*target_fr == base_fr) || touches_replaced(base_fr)) {
        delta.rule_removals.push_back(RuleRemoval{id, base_fr.id});
        delta.rule_installs.push_back(RuleInstall{id, *target_fr});
      }
    }
    for (const Flowrule& target_fr : target_bb->flowrules) {
      if (base_bb.find_flowrule(target_fr.id) == nullptr) {
        delta.rule_installs.push_back(RuleInstall{id, target_fr});
      }
    }
  }
  return delta;
}

Result<void> apply(Nffg& nffg, const ConfigDelta& delta) {
  for (const RuleRemoval& rr : delta.rule_removals) {
    UNIFY_RETURN_IF_ERROR(nffg.remove_flowrule(rr.bisbis, rr.rule_id));
  }
  for (const NfRemoval& nr : delta.nf_removals) {
    UNIFY_RETURN_IF_ERROR(nffg.remove_nf(nr.bisbis, nr.nf_id));
  }
  for (const NfPlacement& np : delta.nf_placements) {
    UNIFY_RETURN_IF_ERROR(nffg.place_nf(np.bisbis, np.nf));
  }
  for (const RuleInstall& ri : delta.rule_installs) {
    UNIFY_RETURN_IF_ERROR(nffg.add_flowrule(ri.bisbis, ri.rule));
  }
  return Result<void>::success();
}

json::Value delta_to_json(const ConfigDelta& delta) {
  using json::Array;
  using json::Object;
  using json::Value;

  Object root;
  Array rule_removals;
  for (const RuleRemoval& rr : delta.rule_removals) {
    Object o;
    o.set("bisbis", rr.bisbis);
    o.set("rule", rr.rule_id);
    rule_removals.emplace_back(std::move(o));
  }
  root.set("rule_removals", std::move(rule_removals));

  Array nf_removals;
  for (const NfRemoval& nr : delta.nf_removals) {
    Object o;
    o.set("bisbis", nr.bisbis);
    o.set("nf", nr.nf_id);
    nf_removals.emplace_back(std::move(o));
  }
  root.set("nf_removals", std::move(nf_removals));

  Array placements;
  for (const NfPlacement& np : delta.nf_placements) {
    Object o;
    o.set("bisbis", np.bisbis);
    Object nf;
    nf.set("id", np.nf.id);
    nf.set("type", np.nf.type);
    Object res;
    res.set("cpu", np.nf.requirement.cpu);
    res.set("mem", np.nf.requirement.mem);
    res.set("storage", np.nf.requirement.storage);
    nf.set("resources", std::move(res));
    Array ports;
    for (const Port& p : np.nf.ports) {
      Object po;
      po.set("id", p.id);
      if (!p.name.empty()) po.set("name", p.name);
      ports.emplace_back(std::move(po));
    }
    nf.set("ports", std::move(ports));
    nf.set("status", to_string(np.nf.status));
    o.set("nf", std::move(nf));
    placements.emplace_back(std::move(o));
  }
  root.set("nf_placements", std::move(placements));

  Array installs;
  for (const RuleInstall& ri : delta.rule_installs) {
    Object o;
    o.set("bisbis", ri.bisbis);
    Object r;
    r.set("id", ri.rule.id);
    r.set("in", ri.rule.in.to_string());
    r.set("out", ri.rule.out.to_string());
    if (!ri.rule.match_tag.empty()) r.set("match_tag", ri.rule.match_tag);
    if (!ri.rule.set_tag.empty()) r.set("set_tag", ri.rule.set_tag);
    if (ri.rule.bandwidth != 0) r.set("bandwidth", ri.rule.bandwidth);
    o.set("rule", std::move(r));
    installs.emplace_back(std::move(o));
  }
  root.set("rule_installs", std::move(installs));
  return Value{std::move(root)};
}

Result<ConfigDelta> delta_from_json(const json::Value& value) {
  if (!value.is_object()) {
    return Error{ErrorCode::kProtocol, "delta must be a JSON object"};
  }
  ConfigDelta delta;

  const auto each = [&](const char* key, auto fn) -> Result<void> {
    const json::Value* arr = value.get(key);
    if (arr == nullptr) return Result<void>::success();
    if (!arr->is_array()) {
      return Error{ErrorCode::kProtocol,
                   std::string(key) + " must be an array"};
    }
    for (const json::Value& item : arr->as_array()) {
      if (!item.is_object()) {
        return Error{ErrorCode::kProtocol,
                     std::string(key) + " entries must be objects"};
      }
      UNIFY_RETURN_IF_ERROR(fn(item));
    }
    return Result<void>::success();
  };

  UNIFY_RETURN_IF_ERROR(
      each("rule_removals", [&](const json::Value& item) -> Result<void> {
        delta.rule_removals.push_back(
            RuleRemoval{item.get_string("bisbis"), item.get_string("rule")});
        return Result<void>::success();
      }));
  UNIFY_RETURN_IF_ERROR(
      each("nf_removals", [&](const json::Value& item) -> Result<void> {
        delta.nf_removals.push_back(
            NfRemoval{item.get_string("bisbis"), item.get_string("nf")});
        return Result<void>::success();
      }));
  UNIFY_RETURN_IF_ERROR(
      each("nf_placements", [&](const json::Value& item) -> Result<void> {
        const json::Value* nf_json = item.get("nf");
        if (nf_json == nullptr || !nf_json->is_object()) {
          return Error{ErrorCode::kProtocol, "nf_placement missing nf"};
        }
        NfInstance nf;
        nf.id = nf_json->get_string("id");
        nf.type = nf_json->get_string("type");
        if (const json::Value* res = nf_json->get("resources")) {
          nf.requirement.cpu = res->get_number("cpu");
          nf.requirement.mem = res->get_number("mem");
          nf.requirement.storage = res->get_number("storage");
        }
        if (const json::Value* ports = nf_json->get("ports")) {
          if (!ports->is_array()) {
            return Error{ErrorCode::kProtocol, "nf ports must be an array"};
          }
          for (const json::Value& pv : ports->as_array()) {
            nf.ports.push_back(Port{static_cast<int>(pv.get_int("id")),
                                    pv.get_string("name")});
          }
        }
        const std::string status = nf_json->get_string("status", "requested");
        const auto parsed = nf_status_from_string(status);
        if (!parsed.has_value()) {
          return Error{ErrorCode::kProtocol, "unknown NF status " + status};
        }
        nf.status = *parsed;
        delta.nf_placements.push_back(
            NfPlacement{item.get_string("bisbis"), std::move(nf)});
        return Result<void>::success();
      }));
  UNIFY_RETURN_IF_ERROR(
      each("rule_installs", [&](const json::Value& item) -> Result<void> {
        const json::Value* rule_json = item.get("rule");
        if (rule_json == nullptr || !rule_json->is_object()) {
          return Error{ErrorCode::kProtocol, "rule_install missing rule"};
        }
        Flowrule fr;
        fr.id = rule_json->get_string("id");
        UNIFY_ASSIGN_OR_RETURN(
            fr.in, port_ref_from_string(rule_json->get_string("in")));
        UNIFY_ASSIGN_OR_RETURN(
            fr.out, port_ref_from_string(rule_json->get_string("out")));
        fr.match_tag = rule_json->get_string("match_tag");
        fr.set_tag = rule_json->get_string("set_tag");
        fr.bandwidth = rule_json->get_number("bandwidth");
        delta.rule_installs.push_back(
            RuleInstall{item.get_string("bisbis"), std::move(fr)});
        return Result<void>::success();
      }));
  return delta;
}

}  // namespace unify::model
