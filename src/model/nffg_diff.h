// Configuration deltas: the payload of edit-config on the Unify interface.
//
// A manager does not re-send the full virtualizer tree on every change — it
// computes the difference between the config it wants and the config it last
// saw, and sends only that (DESIGN.md §6.4). A delta only carries the parts
// a manager owns: NF placements and flowrules. Infrastructure topology and
// link reservations are derived/owned by the layer below.
#pragma once

#include <string>
#include <vector>

#include "json/json.h"
#include "model/nffg.h"
#include "util/result.h"

namespace unify::model {

struct NfPlacement {
  std::string bisbis;
  NfInstance nf;
};
struct NfRemoval {
  std::string bisbis;
  std::string nf_id;
};
struct RuleInstall {
  std::string bisbis;
  Flowrule rule;
};
struct RuleRemoval {
  std::string bisbis;
  std::string rule_id;
};

/// An ordered edit script: removals first (freeing resources), then adds.
struct ConfigDelta {
  std::vector<RuleRemoval> rule_removals;
  std::vector<NfRemoval> nf_removals;
  std::vector<NfPlacement> nf_placements;
  std::vector<RuleInstall> rule_installs;

  [[nodiscard]] bool empty() const noexcept {
    return rule_removals.empty() && nf_removals.empty() &&
           nf_placements.empty() && rule_installs.empty();
  }
  [[nodiscard]] std::size_t size() const noexcept {
    return rule_removals.size() + nf_removals.size() + nf_placements.size() +
           rule_installs.size();
  }
};

/// Computes the delta transforming `base`'s NF/flowrule configuration into
/// `target`'s. Both must describe the same infrastructure (same BiS-BiS
/// ids); NF operational status is ignored (it flows north, not south).
/// A modified NF or flowrule appears as removal + placement.
[[nodiscard]] Result<ConfigDelta> diff(const Nffg& base, const Nffg& target);

/// Applies a delta in order (removals, placements, installs) with the usual
/// capacity/reference checks. On failure the NFFG may be partially updated;
/// callers that need atomicity apply to a copy first.
[[nodiscard]] Result<void> apply(Nffg& nffg, const ConfigDelta& delta);

/// Wire format (JSON) of a delta.
[[nodiscard]] json::Value delta_to_json(const ConfigDelta& delta);
[[nodiscard]] Result<ConfigDelta> delta_from_json(const json::Value& value);

}  // namespace unify::model
