// JSON codec for the NFFG — the wire form of the virtualizer model
// exchanged over the Unify interface (get-config / edit-config payloads).
//
// The schema mirrors the paper's Yang tree:
//   {"id": ..., "name": ...,
//    "saps": [{"id","name"}],
//    "nodes": [{"id","name","domain","type"?,"resources":{cpu,mem,storage},
//               "ports":[{"id","name"}], "nf_types":[...],
//               "internal_delay":ms,
//               "nfs":[{"id","type","resources":{...},"ports":[...],
//                        "status"}],
//               "flowrules":[{"id","in":"node:port","out":"node:port",
//                             "match_tag","set_tag","bandwidth"}]}],
//    "links": [{"id","from":"node:port","to":"node:port",
//               "bandwidth","delay","reserved"}]}
#pragma once

#include "json/json.h"
#include "model/nffg.h"
#include "util/result.h"

namespace unify::model {

[[nodiscard]] json::Value to_json(const Nffg& nffg);

/// Strict decode: unknown node kinds, dangling references or malformed port
/// refs fail with kProtocol / kInvalidArgument.
[[nodiscard]] Result<Nffg> nffg_from_json(const json::Value& value);

/// Convenience: serialize to a compact string / parse back.
[[nodiscard]] std::string to_json_string(const Nffg& nffg);
[[nodiscard]] Result<Nffg> nffg_from_json_string(std::string_view text);

/// "node:port" <-> PortRef (node ids may not contain ':').
[[nodiscard]] std::string port_ref_to_string(const PortRef& ref);
[[nodiscard]] Result<PortRef> port_ref_from_string(std::string_view text);

}  // namespace unify::model
