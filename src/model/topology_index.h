// Graph index over an NFFG for path computation.
//
// Mapping algorithms need shortest paths over the BiS-BiS/SAP topology with
// varying edge weights (delay, hops, residual-bandwidth masking). The index
// translates the string-keyed NFFG into a graph::Digraph once, then offers
// weight adapters on top. Each edge caches a pointer to its Link and its
// static delay weight (link delay + head-node internal delay) so a scan
// touches no string maps.
//
// Lifetime: the index borrows the Nffg. It stays valid while the topology
// (nodes, links) and the static attributes (link delay, internal delay) are
// unchanged; link *reservations* may change freely — the scan adapters read
// residual bandwidth through the cached Link pointers, which stay valid
// because Nffg stores links in a node-based std::map.
#pragma once

#include <map>
#include <string>

#include "graph/algorithms.h"
#include "graph/graph.h"
#include "model/nffg.h"

namespace unify::model {

struct TopoNode {
  std::string id;
  bool is_sap = false;
  double internal_delay = 0;  ///< BiS-BiS crossing delay; 0 for SAPs
};

struct TopoEdge {
  std::string link_id;
  const Link* link = nullptr;  ///< borrowed from the indexed Nffg
  double delay_weight = 0;     ///< link delay + head-node internal delay
  /// Health bias of the head BiS-BiS (&BisBis::health_penalty, nullptr for
  /// SAP heads). Read live at scan time so the orchestrator's penalty
  /// refresh biases path costs without an index rebuild: links into a
  /// degraded domain rank worse, mirroring the node-side placement bias.
  const double* to_penalty = nullptr;
};

class TopologyIndex {
 public:
  using Graph = graph::Digraph<TopoNode, TopoEdge>;

  explicit TopologyIndex(const Nffg& nffg);

  [[nodiscard]] const Graph& graph() const noexcept { return graph_; }
  [[nodiscard]] const Nffg& nffg() const noexcept { return *nffg_; }

  /// kInvalidId when the node id is unknown.
  [[nodiscard]] graph::NodeId node_of(const std::string& id) const noexcept;
  [[nodiscard]] const std::string& id_of(graph::NodeId node) const noexcept {
    return graph_.node(node).id;
  }
  [[nodiscard]] const Link& link_of(graph::EdgeId edge) const noexcept {
    return *graph_.edge(edge).data.link;
  }

  /// Devirtualized delay scanner for the path kernel (path_kernel.h):
  /// weighs each link by its delay plus the head node's internal delay
  /// plus the head node's live health penalty (0 when healthy), masking
  /// links whose residual bandwidth < min_bw. A concrete functor so the
  /// kernel inlines the whole edge relaxation.
  struct DelayScan {
    const Graph* graph;
    double min_bw;

    template <typename Visit>
    void operator()(graph::NodeId node, Visit&& visit) const {
      for (const graph::EdgeId e : graph->out_edges(node)) {
        const auto& edge = graph->edge(e);
        if (edge.data.link->residual_bandwidth() < min_bw) continue;
        visit(e, edge.to, edge_weight(edge.data));
      }
    }
  };
  /// Biased scan weight of one edge: static delay weight + live penalty of
  /// the head node. Exposed so overlay scans (mapping::Context) and
  /// reference Dijkstras in tests charge exactly the same cost.
  [[nodiscard]] static double edge_weight(const TopoEdge& edge) noexcept {
    return edge.delay_weight +
           (edge.to_penalty == nullptr ? 0.0 : *edge.to_penalty);
  }
  [[nodiscard]] DelayScan delay_scan(double min_bw) const noexcept {
    return DelayScan{&graph_, min_bw};
  }

  /// Edge scan weighting each link by its delay plus the head node's
  /// internal delay, masking links whose residual bandwidth < `min_bw`.
  /// Type-erased shim over delay_scan() for the EdgeScanFn algorithms.
  [[nodiscard]] graph::EdgeScanFn scan_by_delay(double min_bw) const;

  /// Edge scan with unit weight per hop, same bandwidth masking.
  [[nodiscard]] graph::EdgeScanFn scan_by_hops(double min_bw) const;

 private:
  const Nffg* nffg_;
  Graph graph_;
  std::map<std::string, graph::NodeId> index_;
};

/// Total delay of a path in the index: link delays plus internal delays of
/// transited (non-endpoint) BiS-BiS nodes.
[[nodiscard]] double path_delay(const TopologyIndex& index,
                                const graph::Path& path);

}  // namespace unify::model
