// Convenience builders for NFFG construction in adapters, tests and
// benchmarks. All helpers assert success — they are meant for programmatic
// construction where ids are controlled by the caller.
#pragma once

#include <cassert>
#include <string>

#include "model/nffg.h"

namespace unify::model {

/// Returns a BiS-BiS with ports 0..port_count-1 and the given capacity.
[[nodiscard]] inline BisBis make_bisbis(std::string id, Resources capacity,
                                        int port_count,
                                        double internal_delay = 0) {
  BisBis bb;
  bb.id = std::move(id);
  bb.capacity = capacity;
  bb.internal_delay = internal_delay;
  bb.ports.reserve(static_cast<std::size_t>(port_count));
  for (int p = 0; p < port_count; ++p) bb.ports.push_back(Port{p, ""});
  return bb;
}

/// Returns an NF instance with ports 0..port_count-1.
[[nodiscard]] inline NfInstance make_nf(std::string id, std::string type,
                                        Resources requirement,
                                        int port_count = 2) {
  NfInstance nf;
  nf.id = std::move(id);
  nf.type = std::move(type);
  nf.requirement = requirement;
  for (int p = 0; p < port_count; ++p) nf.ports.push_back(Port{p, ""});
  return nf;
}

/// Adds a SAP and wires it (bidirectionally) to a BiS-BiS port.
inline void attach_sap(Nffg& nffg, const std::string& sap_id,
                       const std::string& bisbis_id, int bisbis_port,
                       LinkAttrs attrs = {1000, 0.1}) {
  auto sap = nffg.add_sap(Sap{sap_id, sap_id});
  assert(sap.ok());
  auto link = nffg.add_bidirectional_link("l-" + sap_id, PortRef{sap_id, 0},
                                          PortRef{bisbis_id, bisbis_port},
                                          attrs);
  assert(link.ok());
  (void)sap;
  (void)link;
}

/// Wires two BiS-BiS ports with a bidirectional link named "l-<a>-<b>".
inline void connect(Nffg& nffg, const std::string& a, int port_a,
                    const std::string& b, int port_b, LinkAttrs attrs) {
  auto link = nffg.add_bidirectional_link("l-" + a + "-" + b,
                                          PortRef{a, port_a},
                                          PortRef{b, port_b}, attrs);
  assert(link.ok());
  (void)link;
}

}  // namespace unify::model
