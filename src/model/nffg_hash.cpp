#include "model/nffg_hash.h"

#include <bit>
#include <string_view>

namespace unify::model {
namespace {

constexpr std::uint64_t kFnvPrime = 0x100000001B3ULL;

struct Fnv {
  std::uint64_t state = kHashSeed;

  void byte(unsigned char b) noexcept {
    state ^= b;
    state *= kFnvPrime;
  }
  void u64(std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) byte(static_cast<unsigned char>(v >> (i * 8)));
  }
  /// Length-prefixed so adjacent strings cannot alias ("ab","c" vs "a","bc").
  void str(std::string_view s) noexcept {
    u64(s.size());
    for (const char c : s) byte(static_cast<unsigned char>(c));
  }
  /// Bit pattern, matching JSON's round-trip-exact double printing: two
  /// doubles serialize identically iff their bits are identical.
  void f64(double v) noexcept { u64(std::bit_cast<std::uint64_t>(v)); }
  void resources(const Resources& r) noexcept {
    f64(r.cpu);
    f64(r.mem);
    f64(r.storage);
  }
  void port_ref(const PortRef& ref) noexcept {
    str(ref.node);
    u64(static_cast<std::uint64_t>(ref.port));
  }
};

}  // namespace

std::uint64_t content_hash(const Nffg& nffg) noexcept {
  Fnv h;
  h.str(nffg.id());
  h.str(nffg.name());
  h.u64(nffg.saps().size());
  for (const auto& [id, sap] : nffg.saps()) {
    h.str(sap.id);
    h.str(sap.name);
  }
  h.u64(nffg.bisbis().size());
  for (const auto& [id, bb] : nffg.bisbis()) {
    h.str(bb.id);
    h.str(bb.name);
    h.str(bb.domain);
    h.resources(bb.capacity);
    h.u64(bb.ports.size());
    for (const Port& p : bb.ports) {
      h.u64(static_cast<std::uint64_t>(p.id));
      h.str(p.name);
    }
    h.u64(bb.nf_types.size());
    for (const std::string& type : bb.nf_types) h.str(type);
    h.f64(bb.internal_delay);
    // health_penalty deliberately excluded: orchestrator-local, never
    // serialized, must not dirty a slice.
    h.u64(bb.nfs.size());
    for (const auto& [nf_id, nf] : bb.nfs) {
      h.str(nf.id);
      h.str(nf.type);
      h.resources(nf.requirement);
      h.u64(nf.ports.size());
      for (const Port& p : nf.ports) {
        h.u64(static_cast<std::uint64_t>(p.id));
        h.str(p.name);
      }
      h.u64(static_cast<std::uint64_t>(nf.status));
    }
    h.u64(bb.flowrules.size());
    for (const Flowrule& fr : bb.flowrules) {
      h.str(fr.id);
      h.port_ref(fr.in);
      h.port_ref(fr.out);
      h.str(fr.match_tag);
      h.str(fr.set_tag);
      h.f64(fr.bandwidth);
    }
  }
  h.u64(nffg.links().size());
  for (const auto& [id, link] : nffg.links()) {
    h.str(link.id);
    h.port_ref(link.from);
    h.port_ref(link.to);
    h.f64(link.attrs.bandwidth);
    h.f64(link.attrs.delay);
    h.f64(link.reserved);
  }
  h.u64(nffg.hints().size());
  for (const ServiceHint& hint : nffg.hints()) {
    h.str(hint.id);
    h.str(hint.from_sap);
    h.str(hint.to_sap);
    h.f64(hint.max_delay);
    h.f64(hint.min_bandwidth);
  }
  h.u64(nffg.constraints().size());
  for (const PlacementConstraint& c : nffg.constraints()) {
    h.u64(static_cast<std::uint64_t>(c.kind));
    h.str(c.nf_a);
    h.str(c.nf_b);
    h.str(c.host);
  }
  return h.state;
}

}  // namespace unify::model
