#include "model/nffg_json.h"

#include <charconv>

namespace unify::model {

namespace {

using json::Array;
using json::Object;
using json::Value;

Value ports_to_json(const std::vector<Port>& ports) {
  Array arr;
  arr.reserve(ports.size());
  for (const Port& p : ports) {
    Object o;
    o.set("id", p.id);
    if (!p.name.empty()) o.set("name", p.name);
    arr.emplace_back(std::move(o));
  }
  return Value{std::move(arr)};
}

Value resources_to_json(const Resources& r) {
  Object o;
  o.set("cpu", r.cpu);
  o.set("mem", r.mem);
  o.set("storage", r.storage);
  return Value{std::move(o)};
}

Resources resources_from_json(const Value& v) {
  Resources r;
  r.cpu = v.get_number("cpu");
  r.mem = v.get_number("mem");
  r.storage = v.get_number("storage");
  return r;
}

Result<std::vector<Port>> ports_from_json(const Value* v) {
  std::vector<Port> ports;
  if (v == nullptr) return ports;
  if (!v->is_array()) {
    return Error{ErrorCode::kProtocol, "ports must be an array"};
  }
  for (const Value& pv : v->as_array()) {
    if (!pv.is_object()) {
      return Error{ErrorCode::kProtocol, "port must be an object"};
    }
    ports.push_back(Port{static_cast<int>(pv.get_int("id")),
                         pv.get_string("name")});
  }
  return ports;
}

}  // namespace

std::string port_ref_to_string(const PortRef& ref) {
  return ref.to_string();
}

Result<PortRef> port_ref_from_string(std::string_view text) {
  const auto colon = text.rfind(':');
  if (colon == std::string_view::npos || colon == 0 ||
      colon + 1 >= text.size()) {
    return Error{ErrorCode::kProtocol,
                 "malformed port ref '" + std::string(text) + "'"};
  }
  PortRef ref;
  ref.node = std::string(text.substr(0, colon));
  const std::string_view digits = text.substr(colon + 1);
  const auto [ptr, ec] = std::from_chars(
      digits.data(), digits.data() + digits.size(), ref.port);
  if (ec != std::errc{} || ptr != digits.data() + digits.size()) {
    return Error{ErrorCode::kProtocol,
                 "malformed port number in '" + std::string(text) + "'"};
  }
  return ref;
}

json::Value to_json(const Nffg& nffg) {
  Object root;
  root.set("id", nffg.id());
  if (!nffg.name().empty()) root.set("name", nffg.name());

  Array saps;
  for (const auto& [id, sap] : nffg.saps()) {
    Object o;
    o.set("id", sap.id);
    if (!sap.name.empty()) o.set("name", sap.name);
    saps.emplace_back(std::move(o));
  }
  root.set("saps", std::move(saps));

  Array nodes;
  for (const auto& [id, bb] : nffg.bisbis()) {
    Object o;
    o.set("id", bb.id);
    if (!bb.name.empty()) o.set("name", bb.name);
    if (!bb.domain.empty()) o.set("domain", bb.domain);
    o.set("resources", resources_to_json(bb.capacity));
    o.set("ports", ports_to_json(bb.ports));
    if (!bb.nf_types.empty()) {
      Array types;
      for (const std::string& t : bb.nf_types) types.emplace_back(t);
      o.set("nf_types", std::move(types));
    }
    if (bb.internal_delay != 0) o.set("internal_delay", bb.internal_delay);

    Array nfs;
    for (const auto& [nf_id, nf] : bb.nfs) {
      Object n;
      n.set("id", nf.id);
      n.set("type", nf.type);
      n.set("resources", resources_to_json(nf.requirement));
      n.set("ports", ports_to_json(nf.ports));
      n.set("status", to_string(nf.status));
      nfs.emplace_back(std::move(n));
    }
    o.set("nfs", std::move(nfs));

    Array rules;
    for (const Flowrule& fr : bb.flowrules) {
      Object r;
      r.set("id", fr.id);
      r.set("in", fr.in.to_string());
      r.set("out", fr.out.to_string());
      if (!fr.match_tag.empty()) r.set("match_tag", fr.match_tag);
      if (!fr.set_tag.empty()) r.set("set_tag", fr.set_tag);
      if (fr.bandwidth != 0) r.set("bandwidth", fr.bandwidth);
      rules.emplace_back(std::move(r));
    }
    o.set("flowrules", std::move(rules));
    nodes.emplace_back(std::move(o));
  }
  root.set("nodes", std::move(nodes));

  Array links;
  for (const auto& [id, link] : nffg.links()) {
    Object o;
    o.set("id", link.id);
    o.set("from", link.from.to_string());
    o.set("to", link.to.to_string());
    o.set("bandwidth", link.attrs.bandwidth);
    o.set("delay", link.attrs.delay);
    if (link.reserved != 0) o.set("reserved", link.reserved);
    links.emplace_back(std::move(o));
  }
  root.set("links", std::move(links));

  if (!nffg.hints().empty()) {
    Array hints;
    for (const ServiceHint& hint : nffg.hints()) {
      Object o;
      o.set("id", hint.id);
      o.set("from", hint.from_sap);
      o.set("to", hint.to_sap);
      if (hint.max_delay != std::numeric_limits<double>::infinity()) {
        o.set("max_delay", hint.max_delay);
      }
      if (hint.min_bandwidth != 0) o.set("min_bandwidth", hint.min_bandwidth);
      hints.emplace_back(std::move(o));
    }
    root.set("hints", std::move(hints));
  }

  if (!nffg.constraints().empty()) {
    Array constraints;
    for (const PlacementConstraint& c : nffg.constraints()) {
      Object o;
      o.set("kind", to_string(c.kind));
      o.set("nf", c.nf_a);
      if (c.kind == ConstraintKind::kAntiAffinity) {
        o.set("peer", c.nf_b);
      } else {
        o.set("host", c.host);
      }
      constraints.emplace_back(std::move(o));
    }
    root.set("constraints", std::move(constraints));
  }
  return Value{std::move(root)};
}

Result<Nffg> nffg_from_json(const json::Value& value) {
  if (!value.is_object()) {
    return Error{ErrorCode::kProtocol, "NFFG must be a JSON object"};
  }
  Nffg nffg{value.get_string("id"), value.get_string("name")};

  if (const Value* saps = value.get("saps")) {
    if (!saps->is_array()) {
      return Error{ErrorCode::kProtocol, "saps must be an array"};
    }
    for (const Value& sv : saps->as_array()) {
      if (!sv.is_object()) {
        return Error{ErrorCode::kProtocol, "sap must be an object"};
      }
      UNIFY_RETURN_IF_ERROR(
          nffg.add_sap(Sap{sv.get_string("id"), sv.get_string("name")}));
    }
  }

  if (const Value* nodes = value.get("nodes")) {
    if (!nodes->is_array()) {
      return Error{ErrorCode::kProtocol, "nodes must be an array"};
    }
    for (const Value& nv : nodes->as_array()) {
      if (!nv.is_object()) {
        return Error{ErrorCode::kProtocol, "node must be an object"};
      }
      BisBis bb;
      bb.id = nv.get_string("id");
      bb.name = nv.get_string("name");
      bb.domain = nv.get_string("domain");
      if (const Value* res = nv.get("resources")) {
        bb.capacity = resources_from_json(*res);
      }
      UNIFY_ASSIGN_OR_RETURN(bb.ports, ports_from_json(nv.get("ports")));
      if (const Value* types = nv.get("nf_types")) {
        if (!types->is_array()) {
          return Error{ErrorCode::kProtocol, "nf_types must be an array"};
        }
        for (const Value& t : types->as_array()) {
          if (!t.is_string()) {
            return Error{ErrorCode::kProtocol, "nf_type must be a string"};
          }
          bb.nf_types.push_back(t.as_string());
        }
      }
      bb.internal_delay = nv.get_number("internal_delay");

      // NFs and flowrules are attached after the node exists so the usual
      // reference checks run; NF placement is forced because a serialized
      // view may legitimately be overcommitted mid-migration.
      std::vector<NfInstance> nfs;
      if (const Value* nfs_json = nv.get("nfs")) {
        if (!nfs_json->is_array()) {
          return Error{ErrorCode::kProtocol, "nfs must be an array"};
        }
        for (const Value& nfv : nfs_json->as_array()) {
          if (!nfv.is_object()) {
            return Error{ErrorCode::kProtocol, "nf must be an object"};
          }
          NfInstance nf;
          nf.id = nfv.get_string("id");
          nf.type = nfv.get_string("type");
          if (const Value* res = nfv.get("resources")) {
            nf.requirement = resources_from_json(*res);
          }
          UNIFY_ASSIGN_OR_RETURN(nf.ports, ports_from_json(nfv.get("ports")));
          const std::string status = nfv.get_string("status", "requested");
          const auto parsed = nf_status_from_string(status);
          if (!parsed.has_value()) {
            return Error{ErrorCode::kProtocol,
                         "unknown NF status '" + status + "'"};
          }
          nf.status = *parsed;
          nfs.push_back(std::move(nf));
        }
      }
      std::vector<Flowrule> rules;
      if (const Value* rules_json = nv.get("flowrules")) {
        if (!rules_json->is_array()) {
          return Error{ErrorCode::kProtocol, "flowrules must be an array"};
        }
        for (const Value& rv : rules_json->as_array()) {
          if (!rv.is_object()) {
            return Error{ErrorCode::kProtocol, "flowrule must be an object"};
          }
          Flowrule fr;
          fr.id = rv.get_string("id");
          UNIFY_ASSIGN_OR_RETURN(fr.in,
                                 port_ref_from_string(rv.get_string("in")));
          UNIFY_ASSIGN_OR_RETURN(fr.out,
                                 port_ref_from_string(rv.get_string("out")));
          fr.match_tag = rv.get_string("match_tag");
          fr.set_tag = rv.get_string("set_tag");
          fr.bandwidth = rv.get_number("bandwidth");
          rules.push_back(std::move(fr));
        }
      }

      const std::string bb_id = bb.id;
      UNIFY_RETURN_IF_ERROR(nffg.add_bisbis(std::move(bb)));
      for (NfInstance& nf : nfs) {
        UNIFY_RETURN_IF_ERROR(nffg.place_nf(bb_id, std::move(nf),
                                            /*force=*/true));
      }
      for (Flowrule& fr : rules) {
        UNIFY_RETURN_IF_ERROR(nffg.add_flowrule(bb_id, std::move(fr)));
      }
    }
  }

  if (const Value* links = value.get("links")) {
    if (!links->is_array()) {
      return Error{ErrorCode::kProtocol, "links must be an array"};
    }
    for (const Value& lv : links->as_array()) {
      if (!lv.is_object()) {
        return Error{ErrorCode::kProtocol, "link must be an object"};
      }
      Link link;
      link.id = lv.get_string("id");
      UNIFY_ASSIGN_OR_RETURN(link.from,
                             port_ref_from_string(lv.get_string("from")));
      UNIFY_ASSIGN_OR_RETURN(link.to,
                             port_ref_from_string(lv.get_string("to")));
      link.attrs.bandwidth = lv.get_number("bandwidth");
      link.attrs.delay = lv.get_number("delay");
      link.reserved = lv.get_number("reserved");
      UNIFY_RETURN_IF_ERROR(nffg.add_link(std::move(link)));
    }
  }

  if (const Value* hints = value.get("hints")) {
    if (!hints->is_array()) {
      return Error{ErrorCode::kProtocol, "hints must be an array"};
    }
    for (const Value& hv : hints->as_array()) {
      if (!hv.is_object()) {
        return Error{ErrorCode::kProtocol, "hint must be an object"};
      }
      ServiceHint hint;
      hint.id = hv.get_string("id");
      hint.from_sap = hv.get_string("from");
      hint.to_sap = hv.get_string("to");
      hint.max_delay = hv.get_number(
          "max_delay", std::numeric_limits<double>::infinity());
      hint.min_bandwidth = hv.get_number("min_bandwidth");
      UNIFY_RETURN_IF_ERROR(nffg.add_hint(std::move(hint)));
    }
  }

  if (const Value* constraints = value.get("constraints")) {
    if (!constraints->is_array()) {
      return Error{ErrorCode::kProtocol, "constraints must be an array"};
    }
    for (const Value& cv : constraints->as_array()) {
      if (!cv.is_object()) {
        return Error{ErrorCode::kProtocol, "constraint must be an object"};
      }
      PlacementConstraint c;
      const std::string kind = cv.get_string("kind");
      if (kind == "anti-affinity") {
        c.kind = ConstraintKind::kAntiAffinity;
        c.nf_b = cv.get_string("peer");
      } else if (kind == "pin") {
        c.kind = ConstraintKind::kPin;
        c.host = cv.get_string("host");
      } else if (kind == "forbid") {
        c.kind = ConstraintKind::kForbid;
        c.host = cv.get_string("host");
      } else {
        return Error{ErrorCode::kProtocol,
                     "unknown constraint kind '" + kind + "'"};
      }
      c.nf_a = cv.get_string("nf");
      UNIFY_RETURN_IF_ERROR(nffg.add_constraint(std::move(c)));
    }
  }

  return nffg;
}

std::string to_json_string(const Nffg& nffg) { return to_json(nffg).dump(); }

Result<Nffg> nffg_from_json_string(std::string_view text) {
  UNIFY_ASSIGN_OR_RETURN(json::Value value, json::parse(text));
  return nffg_from_json(value);
}

}  // namespace unify::model
