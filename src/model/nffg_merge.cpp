#include "model/nffg_merge.h"

#include <algorithm>
#include <set>

namespace unify::model {

namespace {

/// The single link attaching `sap_id` to a BiS-BiS inside `view`, if any.
/// Returns {bisbis port, attach attrs}. Uses the SAP->BiS-BiS direction.
struct SapAttachment {
  PortRef bisbis_port;
  LinkAttrs attrs;
  bool found = false;
};

SapAttachment find_attachment(const Nffg& view, const std::string& sap_id) {
  SapAttachment out;
  for (const auto& [id, link] : view.links()) {
    if (link.from.node == sap_id) {
      out.bisbis_port = link.to;
      out.attrs = link.attrs;
      out.found = true;
      return out;
    }
  }
  return out;
}

}  // namespace

Result<Nffg> merge_views(const std::vector<DomainView>& views) {
  Nffg global{"global-view"};

  // Where is each SAP id advertised?
  std::map<std::string, std::vector<const DomainView*>> sap_owners;
  for (const DomainView& dv : views) {
    for (const auto& [sap_id, sap] : dv.view.saps()) {
      sap_owners[sap_id].push_back(&dv);
    }
  }
  for (const auto& [sap_id, owners] : sap_owners) {
    if (owners.size() > 2) {
      return Error{ErrorCode::kInvalidArgument,
                   "SAP " + sap_id + " advertised by " +
                       std::to_string(owners.size()) +
                       " domains; stitching supports exactly 2"};
    }
  }

  // Copy nodes, stamping domains; copy customer SAPs only.
  for (const DomainView& dv : views) {
    for (const auto& [id, bb] : dv.view.bisbis()) {
      BisBis copy = bb;
      copy.domain = dv.domain;
      UNIFY_RETURN_IF_ERROR(global.add_bisbis(std::move(copy)));
    }
    for (const auto& [sap_id, sap] : dv.view.saps()) {
      if (sap_owners[sap_id].size() == 1) {
        UNIFY_RETURN_IF_ERROR(global.add_sap(sap));
      }
    }
  }

  // Copy links that do not touch stitching SAPs.
  const auto is_stitch = [&](const std::string& node) {
    const auto it = sap_owners.find(node);
    return it != sap_owners.end() && it->second.size() == 2;
  };
  for (const DomainView& dv : views) {
    for (const auto& [id, link] : dv.view.links()) {
      if (is_stitch(link.from.node) || is_stitch(link.to.node)) continue;
      UNIFY_RETURN_IF_ERROR(global.add_link(link));
    }
  }

  // Stitch: one bidirectional inter-domain link per shared SAP.
  for (const auto& [sap_id, owners] : sap_owners) {
    if (owners.size() != 2) continue;
    const SapAttachment a = find_attachment(owners[0]->view, sap_id);
    const SapAttachment b = find_attachment(owners[1]->view, sap_id);
    if (!a.found || !b.found) {
      return Error{ErrorCode::kInvalidArgument,
                   "stitching SAP " + sap_id +
                       " is not attached to a BiS-BiS in both domains"};
    }
    const LinkAttrs attrs{std::min(a.attrs.bandwidth, b.attrs.bandwidth),
                          a.attrs.delay + b.attrs.delay};
    UNIFY_RETURN_IF_ERROR(global.add_bidirectional_link(
        "xd-" + sap_id, a.bisbis_port, b.bisbis_port, attrs));
  }

  return global;
}

Nffg slice_for_domain(const Nffg& global, const std::string& domain) {
  Nffg slice{global.id() + "@" + domain};

  std::set<std::string> kept;
  for (const auto& [id, bb] : global.bisbis()) {
    if (bb.domain != domain) continue;
    (void)slice.add_bisbis(bb);  // ids unique in source, cannot collide
    kept.insert(id);
  }

  // SAPs directly linked to a kept node.
  for (const auto& [link_id, link] : global.links()) {
    for (const auto& [sap_end, bb_end] :
         {std::pair{link.from, link.to}, std::pair{link.to, link.from}}) {
      if (global.find_sap(sap_end.node) != nullptr &&
          kept.count(bb_end.node) != 0 &&
          slice.find_sap(sap_end.node) == nullptr) {
        (void)slice.add_sap(*global.find_sap(sap_end.node));
      }
    }
  }

  // Links fully inside the slice.
  const auto inside = [&](const std::string& node) {
    return kept.count(node) != 0 || slice.find_sap(node) != nullptr;
  };
  for (const auto& [link_id, link] : global.links()) {
    if (inside(link.from.node) && inside(link.to.node)) {
      (void)slice.add_link(link);
    }
  }
  return slice;
}

std::vector<std::string> domains_of(const Nffg& nffg) {
  std::set<std::string> names;
  for (const auto& [id, bb] : nffg.bisbis()) {
    if (!bb.domain.empty()) names.insert(bb.domain);
  }
  return {names.begin(), names.end()};
}

}  // namespace unify::model
