// Immutable, epoch-stamped snapshot of an orchestrator substrate view.
//
// A ViewSnapshot is what speculative readers (parallel mappers, the path
// kernel, Context caches) work against while the orchestrator's sequential
// commit phase keeps mutating its live view. Acquisition is O(1) — two
// shared_ptr copies — because the owner (core::ShardedViewState) manages
// the view copy-on-write: the underlying Nffg is cloned only when a commit
// lands while snapshots are still alive. The bundled TopologyIndex is built
// over exactly this Nffg, so path scans through the snapshot never touch a
// concurrently mutated graph.
//
// Thread safety: a snapshot is deeply immutable; any number of threads may
// read it concurrently. Destroying the last snapshot of a superseded epoch
// frees that epoch's view.
#pragma once

#include <cstdint>
#include <memory>

#include "model/nffg.h"
#include "model/topology_index.h"

namespace unify::model {

struct ViewSnapshot {
  std::shared_ptr<const Nffg> view;
  /// Index over *view; may be null when the owner never needed paths.
  std::shared_ptr<const TopologyIndex> index;
  /// The owner's epoch at acquisition: readers on epoch N never observe
  /// epoch N+1 writes.
  std::uint64_t epoch = 0;

  [[nodiscard]] const Nffg& nffg() const noexcept { return *view; }
  [[nodiscard]] explicit operator bool() const noexcept {
    return view != nullptr;
  }
};

}  // namespace unify::model
