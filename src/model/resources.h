// Joint compute/storage resource vector and link attributes.
//
// The BiS-BiS abstraction fuses compute with forwarding; Resources is the
// compute/storage half (cpu cores, memory MB, storage GB) and LinkAttrs the
// network half (bandwidth Mbit/s, propagation delay ms).
#pragma once

#include <algorithm>
#include <string>

#include "util/strings.h"

namespace unify::model {

struct Resources {
  double cpu = 0;      ///< cores
  double mem = 0;      ///< MB
  double storage = 0;  ///< GB

  Resources& operator+=(const Resources& o) noexcept {
    cpu += o.cpu;
    mem += o.mem;
    storage += o.storage;
    return *this;
  }
  Resources& operator-=(const Resources& o) noexcept {
    cpu -= o.cpu;
    mem -= o.mem;
    storage -= o.storage;
    return *this;
  }
  friend Resources operator+(Resources a, const Resources& b) noexcept {
    return a += b;
  }
  friend Resources operator-(Resources a, const Resources& b) noexcept {
    return a -= b;
  }
  friend bool operator==(const Resources& a, const Resources& b) noexcept {
    return a.cpu == b.cpu && a.mem == b.mem && a.storage == b.storage;
  }

  /// True when a demand of `need` fits into this amount (component-wise).
  [[nodiscard]] bool fits(const Resources& need) const noexcept {
    return need.cpu <= cpu && need.mem <= mem && need.storage <= storage;
  }

  [[nodiscard]] bool is_zero() const noexcept {
    return cpu == 0 && mem == 0 && storage == 0;
  }

  /// Any component negative (overcommitted)?
  [[nodiscard]] bool negative() const noexcept {
    return cpu < 0 || mem < 0 || storage < 0;
  }

  /// Component-wise max (used when folding views together).
  [[nodiscard]] Resources max_with(const Resources& o) const noexcept {
    return Resources{std::max(cpu, o.cpu), std::max(mem, o.mem),
                     std::max(storage, o.storage)};
  }

  /// "cpu=4 mem=2048 storage=10"
  [[nodiscard]] std::string to_string() const {
    return "cpu=" + strings::format_double(cpu) +
           " mem=" + strings::format_double(mem) +
           " storage=" + strings::format_double(storage);
  }
};

struct LinkAttrs {
  double bandwidth = 0;  ///< Mbit/s capacity
  double delay = 0;      ///< ms one-way

  friend bool operator==(const LinkAttrs& a, const LinkAttrs& b) noexcept {
    return a.bandwidth == b.bandwidth && a.delay == b.delay;
  }
};

}  // namespace unify::model
