// Multi-domain view assembly and decomposition.
//
// The Resource Orchestrator of the paper sits above several domain
// virtualizers. `merge_views` folds the per-domain views into one global
// NFFG, stitching domains together at shared SAPs (the ESCAPE convention:
// an inter-domain connection is advertised by both domains as a SAP with
// the same id). `split_by_domain` does the inverse for configurations: it
// carves a mapped global config into the per-domain configs that are pushed
// south over the Unify interface.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "model/nffg.h"
#include "util/result.h"

namespace unify::model {

struct DomainView {
  std::string domain;  ///< domain name stamped onto its BiS-BiS nodes
  Nffg view;
};

/// Folds domain views into one global view.
///
/// * Node/link ids must be globally unique except for stitching SAPs.
/// * A SAP id appearing in exactly two domains is a stitching point: the SAP
///   disappears and the two BiS-BiS ports that connected to it are joined by
///   bidirectional inter-domain links "xd-<sap>" / "xd-<sap>-back"
///   (bandwidth = min, delay = sum of the two SAP attachment links).
/// * A SAP id in one domain stays a customer-facing SAP.
/// * A SAP id in three or more domains is an error (kInvalidArgument).
[[nodiscard]] Result<Nffg> merge_views(const std::vector<DomainView>& views);

/// Extracts the slice of `global` belonging to `domain`: its BiS-BiS nodes
/// (with their NFs and flowrules), SAPs referenced by intra-domain links,
/// and all links with both endpoints inside the slice.
[[nodiscard]] Nffg slice_for_domain(const Nffg& global,
                                    const std::string& domain);

/// Lists the distinct BiS-BiS domains present in `nffg`, sorted.
[[nodiscard]] std::vector<std::string> domains_of(const Nffg& nffg);

}  // namespace unify::model
