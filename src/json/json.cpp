#include "json/json.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/strings.h"

namespace unify::json {

// ---------------------------------------------------------------- Object

const Value* Object::find(std::string_view key) const noexcept {
  for (const auto& [k, v] : entries_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Value* Object::find(std::string_view key) noexcept {
  for (auto& [k, v] : entries_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Value& Object::set(std::string key, Value value) {
  if (Value* existing = find(key)) {
    *existing = std::move(value);
    return *existing;
  }
  entries_.emplace_back(std::move(key), std::move(value));
  return entries_.back().second;
}

Value& Object::operator[](std::string_view key) {
  if (Value* existing = find(key)) return *existing;
  entries_.emplace_back(std::string(key), Value{});
  return entries_.back().second;
}

bool Object::erase(std::string_view key) {
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->first == key) {
      entries_.erase(it);
      return true;
    }
  }
  return false;
}

bool operator==(const Object& a, const Object& b) {
  // Order-insensitive comparison: two configs with reordered members are
  // semantically identical.
  if (a.entries_.size() != b.entries_.size()) return false;
  for (const auto& [k, v] : a.entries_) {
    const Value* other = b.find(k);
    if (other == nullptr || !(*other == v)) return false;
  }
  return true;
}

// ----------------------------------------------------------------- Value

bool Value::as_bool() const noexcept {
  assert(is_bool());
  return bool_;
}

double Value::as_number() const noexcept {
  assert(is_number());
  return number_;
}

std::int64_t Value::as_int() const noexcept {
  assert(is_number());
  return static_cast<std::int64_t>(number_);
}

const std::string& Value::as_string() const noexcept {
  assert(is_string());
  return *string_;
}

const Array& Value::as_array() const noexcept {
  assert(is_array());
  return *array_;
}

Array& Value::as_array() noexcept {
  assert(is_array());
  return *array_;
}

const Object& Value::as_object() const noexcept {
  assert(is_object());
  return *object_;
}

Object& Value::as_object() noexcept {
  assert(is_object());
  return *object_;
}

const Value* Value::get(std::string_view key) const noexcept {
  return is_object() ? object_->find(key) : nullptr;
}

std::string Value::get_string(std::string_view key, std::string fallback) const {
  const Value* v = get(key);
  return (v != nullptr && v->is_string()) ? v->as_string()
                                          : std::move(fallback);
}

double Value::get_number(std::string_view key, double fallback) const noexcept {
  const Value* v = get(key);
  return (v != nullptr && v->is_number()) ? v->as_number() : fallback;
}

std::int64_t Value::get_int(std::string_view key,
                            std::int64_t fallback) const noexcept {
  const Value* v = get(key);
  return (v != nullptr && v->is_number()) ? v->as_int() : fallback;
}

bool Value::get_bool(std::string_view key, bool fallback) const noexcept {
  const Value* v = get(key);
  return (v != nullptr && v->is_bool()) ? v->as_bool() : fallback;
}

void Value::copy_from(const Value& other) {
  type_ = other.type_;
  bool_ = other.bool_;
  number_ = other.number_;
  if (other.string_) string_ = std::make_unique<std::string>(*other.string_);
  if (other.array_) array_ = std::make_unique<Array>(*other.array_);
  if (other.object_) object_ = std::make_unique<Object>(*other.object_);
}

bool operator==(const Value& a, const Value& b) {
  if (a.type_ != b.type_) return false;
  switch (a.type_) {
    case Type::kNull:   return true;
    case Type::kBool:   return a.bool_ == b.bool_;
    case Type::kNumber: return a.number_ == b.number_;
    case Type::kString: return *a.string_ == *b.string_;
    case Type::kArray:  return *a.array_ == *b.array_;
    case Type::kObject: return *a.object_ == *b.object_;
  }
  return false;
}

// ---------------------------------------------------------------- writer

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char raw : s) {
    const auto c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"':  out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += raw;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double n) {
  if (!std::isfinite(n)) {
    out += "null";  // JSON has no Inf/NaN; null is the conventional fallback
    return;
  }
  out += strings::format_double(n);
}

void append_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

void Value::dump_to(std::string& out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull:
      out += "null";
      return;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Type::kNumber:
      append_number(out, number_);
      return;
    case Type::kString:
      append_escaped(out, *string_);
      return;
    case Type::kArray: {
      if (array_->empty()) {
        out += "[]";
        return;
      }
      out += '[';
      bool first = true;
      for (const Value& v : *array_) {
        if (!first) out += ',';
        first = false;
        append_indent(out, indent, depth + 1);
        v.dump_to(out, indent, depth + 1);
      }
      append_indent(out, indent, depth);
      out += ']';
      return;
    }
    case Type::kObject: {
      if (object_->empty()) {
        out += "{}";
        return;
      }
      out += '{';
      bool first = true;
      for (const auto& [k, v] : *object_) {
        if (!first) out += ',';
        first = false;
        append_indent(out, indent, depth + 1);
        append_escaped(out, k);
        out += ':';
        if (indent > 0) out += ' ';
        v.dump_to(out, indent, depth + 1);
      }
      append_indent(out, indent, depth);
      out += '}';
      return;
    }
  }
}

std::string Value::dump() const {
  std::string out;
  dump_to(out, 0, 0);
  return out;
}

std::string Value::dump_pretty() const {
  std::string out;
  dump_to(out, 2, 0);
  return out;
}

// ---------------------------------------------------------------- parser

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Value> run() {
    skip_ws();
    UNIFY_ASSIGN_OR_RETURN(Value v, parse_value());
    skip_ws();
    if (pos_ != text_.size()) {
      return fail("trailing characters after document");
    }
    return v;
  }

 private:
  Result<Value> parse_value() {
    if (depth_ > kMaxDepth) return fail("nesting too deep");
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return parse_string_value();
      case 't': return parse_literal("true", Value(true));
      case 'f': return parse_literal("false", Value(false));
      case 'n': return parse_literal("null", Value(nullptr));
      default:  return parse_number();
    }
  }

  Result<Value> parse_object() {
    ++pos_;  // '{'
    ++depth_;
    Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      --depth_;
      return Value(std::move(obj));
    }
    while (true) {
      skip_ws();
      if (peek() != '"') return fail("expected object key");
      UNIFY_ASSIGN_OR_RETURN(std::string key, parse_string());
      skip_ws();
      if (peek() != ':') return fail("expected ':' after key");
      ++pos_;
      skip_ws();
      UNIFY_ASSIGN_OR_RETURN(Value v, parse_value());
      obj.set(std::move(key), std::move(v));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        --depth_;
        return Value(std::move(obj));
      }
      return fail("expected ',' or '}' in object");
    }
  }

  Result<Value> parse_array() {
    ++pos_;  // '['
    ++depth_;
    Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      --depth_;
      return Value(std::move(arr));
    }
    while (true) {
      skip_ws();
      UNIFY_ASSIGN_OR_RETURN(Value v, parse_value());
      arr.push_back(std::move(v));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        --depth_;
        return Value(std::move(arr));
      }
      return fail("expected ',' or ']' in array");
    }
  }

  Result<Value> parse_string_value() {
    UNIFY_ASSIGN_OR_RETURN(std::string s, parse_string());
    return Value(std::move(s));
  }

  Result<std::string> parse_string() {
    assert(peek() == '"');
    ++pos_;
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return fail("unterminated escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"':  out += '"'; break;
          case '\\': out += '\\'; break;
          case '/':  out += '/'; break;
          case 'b':  out += '\b'; break;
          case 'f':  out += '\f'; break;
          case 'n':  out += '\n'; break;
          case 'r':  out += '\r'; break;
          case 't':  out += '\t'; break;
          case 'u': {
            UNIFY_ASSIGN_OR_RETURN(unsigned cp, parse_hex4());
            if (cp >= 0xD800 && cp <= 0xDBFF) {
              // High surrogate: require a following \uDC00-\uDFFF.
              if (pos_ + 1 < text_.size() && text_[pos_] == '\\' &&
                  text_[pos_ + 1] == 'u') {
                pos_ += 2;
                UNIFY_ASSIGN_OR_RETURN(unsigned lo, parse_hex4());
                if (lo < 0xDC00 || lo > 0xDFFF) {
                  return fail("invalid low surrogate");
                }
                cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
              } else {
                return fail("unpaired high surrogate");
              }
            } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
              return fail("unpaired low surrogate");
            }
            append_utf8(out, cp);
            break;
          }
          default:
            return fail("invalid escape character");
        }
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      }
      out += c;
      ++pos_;
    }
    return fail("unterminated string");
  }

  Result<unsigned> parse_hex4() {
    if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return fail("invalid hex digit in \\u escape");
      }
    }
    return value;
  }

  static void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  Result<Value> parse_literal(std::string_view word, Value value) {
    if (text_.substr(pos_, word.size()) != word) {
      return fail("invalid literal");
    }
    pos_ += word.size();
    return value;
  }

  Result<Value> parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (pos_ >= text_.size() ||
        !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
      return fail("invalid number");
    }
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() ||
          !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
        return fail("digit required after decimal point");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
        return fail("digit required in exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    return Value(std::strtod(token.c_str(), nullptr));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        return;
      }
    }
  }

  [[nodiscard]] char peek() const noexcept {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  Error fail(std::string_view what) const {
    return Error{ErrorCode::kProtocol,
                 std::string(what) + " at byte " + std::to_string(pos_)};
  }

  static constexpr int kMaxDepth = 256;

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Result<Value> parse(std::string_view text) { return Parser(text).run(); }

}  // namespace unify::json
