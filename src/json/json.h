// JSON value model, parser and writer.
//
// The paper models the virtualizer in Yang; this reproduction serializes the
// same information model as JSON trees exchanged over the Unify interface
// (see DESIGN.md §2 for the substitution rationale). Objects preserve
// insertion order so serialized configs and their diffs are stable and
// readable.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/result.h"

namespace unify::json {

class Value;

/// Order-preserving string->Value map (linear lookup; virtualizer objects
/// are small and iteration/serialization dominate).
class Object {
 public:
  using Entry = std::pair<std::string, Value>;

  Object() = default;

  /// Returns the value for `key`, or nullptr when absent.
  [[nodiscard]] const Value* find(std::string_view key) const noexcept;
  [[nodiscard]] Value* find(std::string_view key) noexcept;

  /// Inserts or overwrites.
  Value& set(std::string key, Value value);

  /// Returns a reference, default-constructing a null member when absent.
  Value& operator[](std::string_view key);

  /// Removes the member; returns true when it existed.
  bool erase(std::string_view key);

  [[nodiscard]] bool contains(std::string_view key) const noexcept {
    return find(key) != nullptr;
  }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }

  [[nodiscard]] auto begin() const noexcept { return entries_.begin(); }
  [[nodiscard]] auto end() const noexcept { return entries_.end(); }
  [[nodiscard]] auto begin() noexcept { return entries_.begin(); }
  [[nodiscard]] auto end() noexcept { return entries_.end(); }

  friend bool operator==(const Object& a, const Object& b);

 private:
  std::vector<Entry> entries_;
};

using Array = std::vector<Value>;

enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

/// A JSON value. Value semantics throughout; copies are deep.
class Value {
 public:
  Value() noexcept : type_(Type::kNull) {}
  Value(std::nullptr_t) noexcept : type_(Type::kNull) {}          // NOLINT
  Value(bool b) noexcept : type_(Type::kBool), bool_(b) {}        // NOLINT
  Value(double n) noexcept : type_(Type::kNumber), number_(n) {}  // NOLINT
  Value(int n) noexcept : Value(static_cast<double>(n)) {}        // NOLINT
  Value(std::int64_t n) noexcept : Value(static_cast<double>(n)) {}  // NOLINT
  Value(std::size_t n) noexcept : Value(static_cast<double>(n)) {}   // NOLINT
  Value(const char* s) : Value(std::string(s)) {}                 // NOLINT
  Value(std::string_view s) : Value(std::string(s)) {}            // NOLINT
  Value(std::string s)                                            // NOLINT
      : type_(Type::kString), string_(std::make_unique<std::string>(std::move(s))) {}
  Value(Array a)                                                  // NOLINT
      : type_(Type::kArray), array_(std::make_unique<Array>(std::move(a))) {}
  Value(Object o)                                                 // NOLINT
      : type_(Type::kObject), object_(std::make_unique<Object>(std::move(o))) {}

  Value(const Value& other) { copy_from(other); }
  Value& operator=(const Value& other) {
    if (this != &other) {
      reset();
      copy_from(other);
    }
    return *this;
  }
  Value(Value&&) noexcept = default;
  Value& operator=(Value&&) noexcept = default;
  ~Value() = default;

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return type_ == Type::kBool; }
  [[nodiscard]] bool is_number() const noexcept { return type_ == Type::kNumber; }
  [[nodiscard]] bool is_string() const noexcept { return type_ == Type::kString; }
  [[nodiscard]] bool is_array() const noexcept { return type_ == Type::kArray; }
  [[nodiscard]] bool is_object() const noexcept { return type_ == Type::kObject; }

  /// Typed accessors; preconditions enforced by assert.
  [[nodiscard]] bool as_bool() const noexcept;
  [[nodiscard]] double as_number() const noexcept;
  [[nodiscard]] std::int64_t as_int() const noexcept;
  [[nodiscard]] const std::string& as_string() const noexcept;
  [[nodiscard]] const Array& as_array() const noexcept;
  [[nodiscard]] Array& as_array() noexcept;
  [[nodiscard]] const Object& as_object() const noexcept;
  [[nodiscard]] Object& as_object() noexcept;

  /// Lenient lookups returning fallbacks; handy when reading configs.
  [[nodiscard]] const Value* get(std::string_view key) const noexcept;
  [[nodiscard]] std::string get_string(std::string_view key,
                                       std::string fallback = {}) const;
  [[nodiscard]] double get_number(std::string_view key,
                                  double fallback = 0) const noexcept;
  [[nodiscard]] std::int64_t get_int(std::string_view key,
                                     std::int64_t fallback = 0) const noexcept;
  [[nodiscard]] bool get_bool(std::string_view key,
                              bool fallback = false) const noexcept;

  /// Compact serialization ({"a":1}).
  [[nodiscard]] std::string dump() const;
  /// Pretty serialization with 2-space indent.
  [[nodiscard]] std::string dump_pretty() const;

  friend bool operator==(const Value& a, const Value& b);
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }

 private:
  void reset() noexcept {
    string_.reset();
    array_.reset();
    object_.reset();
    type_ = Type::kNull;
  }
  void copy_from(const Value& other);
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::unique_ptr<std::string> string_;
  std::unique_ptr<Array> array_;
  std::unique_ptr<Object> object_;
};

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected). Errors carry a byte offset in the message.
[[nodiscard]] Result<Value> parse(std::string_view text);

}  // namespace unify::json
