#include "catalog/catalog_json.h"

#include <charconv>

#include "model/nffg_json.h"

namespace unify::catalog {

namespace {
using json::Array;
using json::Object;
using json::Value;
}  // namespace

json::Value to_json(const NfCatalog& catalog) {
  Object root;
  Array types;
  for (const auto& [name, type] : catalog.types()) {
    Object o;
    o.set("name", type.name);
    o.set("cpu", type.requirement.cpu);
    o.set("mem", type.requirement.mem);
    o.set("storage", type.requirement.storage);
    o.set("ports", type.port_count);
    if (!type.description.empty()) o.set("description", type.description);
    types.emplace_back(std::move(o));
  }
  root.set("types", std::move(types));

  Array decompositions;
  for (const auto& [name, type] : catalog.types()) {
    for (const Decomposition& rule : catalog.decompositions_of(name)) {
      Object o;
      o.set("id", rule.id);
      o.set("target", rule.target_type);
      Array components;
      for (const DecompComponent& c : rule.components) {
        Object co;
        co.set("suffix", c.suffix);
        co.set("type", c.type);
        co.set("ports", c.port_count);
        components.emplace_back(std::move(co));
      }
      o.set("components", std::move(components));
      Array links;
      for (const DecompLink& l : rule.internal_links) {
        Object lo;
        lo.set("from", l.from.to_string());
        lo.set("to", l.to.to_string());
        if (l.bandwidth_factor != 1.0) lo.set("factor", l.bandwidth_factor);
        links.emplace_back(std::move(lo));
      }
      o.set("links", std::move(links));
      Object port_map;
      for (const auto& [port, ref] : rule.port_map) {
        port_map.set(std::to_string(port), ref.to_string());
      }
      o.set("port_map", std::move(port_map));
      decompositions.emplace_back(std::move(o));
    }
  }
  root.set("decompositions", std::move(decompositions));
  return Value{std::move(root)};
}

Result<NfCatalog> catalog_from_json(const json::Value& value) {
  if (!value.is_object()) {
    return Error{ErrorCode::kProtocol, "catalog must be a JSON object"};
  }
  NfCatalog catalog;

  const Value* types = value.get("types");
  if (types == nullptr || !types->is_array()) {
    return Error{ErrorCode::kProtocol, "catalog needs a types array"};
  }
  for (const Value& tv : types->as_array()) {
    if (!tv.is_object()) {
      return Error{ErrorCode::kProtocol, "type must be an object"};
    }
    NfType type;
    type.name = tv.get_string("name");
    type.requirement = model::Resources{tv.get_number("cpu"),
                                        tv.get_number("mem"),
                                        tv.get_number("storage")};
    type.port_count = static_cast<int>(tv.get_int("ports", 2));
    type.description = tv.get_string("description");
    UNIFY_RETURN_IF_ERROR(catalog.register_type(std::move(type)));
  }

  if (const Value* decompositions = value.get("decompositions")) {
    if (!decompositions->is_array()) {
      return Error{ErrorCode::kProtocol, "decompositions must be an array"};
    }
    for (const Value& dv : decompositions->as_array()) {
      if (!dv.is_object()) {
        return Error{ErrorCode::kProtocol, "decomposition must be an object"};
      }
      Decomposition rule;
      rule.id = dv.get_string("id");
      rule.target_type = dv.get_string("target");
      if (const Value* components = dv.get("components")) {
        if (!components->is_array()) {
          return Error{ErrorCode::kProtocol, "components must be an array"};
        }
        for (const Value& cv : components->as_array()) {
          rule.components.push_back(DecompComponent{
              cv.get_string("suffix"), cv.get_string("type"),
              static_cast<int>(cv.get_int("ports", 2))});
        }
      }
      if (const Value* links = dv.get("links")) {
        if (!links->is_array()) {
          return Error{ErrorCode::kProtocol, "links must be an array"};
        }
        for (const Value& lv : links->as_array()) {
          DecompLink link;
          UNIFY_ASSIGN_OR_RETURN(
              link.from, model::port_ref_from_string(lv.get_string("from")));
          UNIFY_ASSIGN_OR_RETURN(
              link.to, model::port_ref_from_string(lv.get_string("to")));
          link.bandwidth_factor = lv.get_number("factor", 1.0);
          rule.internal_links.push_back(std::move(link));
        }
      }
      if (const Value* port_map = dv.get("port_map")) {
        if (!port_map->is_object()) {
          return Error{ErrorCode::kProtocol, "port_map must be an object"};
        }
        for (const auto& [key, ref_json] : port_map->as_object()) {
          int port = 0;
          const auto [ptr, ec] =
              std::from_chars(key.data(), key.data() + key.size(), port);
          if (ec != std::errc{} || ptr != key.data() + key.size()) {
            return Error{ErrorCode::kProtocol,
                         "port_map key '" + key + "' is not a port number"};
          }
          if (!ref_json.is_string()) {
            return Error{ErrorCode::kProtocol, "port_map value must be a"
                                               " string"};
          }
          UNIFY_ASSIGN_OR_RETURN(
              const model::PortRef ref,
              model::port_ref_from_string(ref_json.as_string()));
          rule.port_map.emplace(port, ref);
        }
      }
      UNIFY_RETURN_IF_ERROR(catalog.register_decomposition(std::move(rule)));
    }
  }
  return catalog;
}

std::string to_json_string(const NfCatalog& catalog) {
  return to_json(catalog).dump();
}

Result<NfCatalog> catalog_from_json_string(std::string_view text) {
  UNIFY_ASSIGN_OR_RETURN(json::Value value, json::parse(text));
  return catalog_from_json(value);
}

}  // namespace unify::catalog
