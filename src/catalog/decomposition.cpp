#include "catalog/decomposition.h"

#include <algorithm>

#include "catalog/nf_catalog.h"

namespace unify::catalog {

Result<void> apply_decomposition(sg::ServiceGraph& sg,
                                 const std::string& nf_id,
                                 const Decomposition& rule) {
  const sg::SgNf* nf = sg.find_nf(nf_id);
  if (nf == nullptr) {
    return Error{ErrorCode::kNotFound, "NF " + nf_id};
  }
  if (nf->type != rule.target_type) {
    return Error{ErrorCode::kInvalidArgument,
                 "rule " + rule.id + " targets " + rule.target_type +
                     " but NF " + nf_id + " is " + nf->type};
  }
  if (rule.components.empty()) {
    return Error{ErrorCode::kInvalidArgument,
                 "rule " + rule.id + " has no components"};
  }

  // Largest external bandwidth incident to the NF scales internal links.
  double max_bw = 0;
  for (const sg::SgLink& l : sg.links()) {
    if (l.from.node == nf_id || l.to.node == nf_id) {
      max_bw = std::max(max_bw, l.bandwidth);
    }
  }

  std::vector<sg::SgNf> components;
  components.reserve(rule.components.size());
  for (const DecompComponent& c : rule.components) {
    components.push_back(
        sg::SgNf{nf_id + "." + c.suffix, c.type, c.port_count, {}});
  }

  std::vector<sg::SgLink> internal_links;
  internal_links.reserve(rule.internal_links.size());
  for (std::size_t i = 0; i < rule.internal_links.size(); ++i) {
    const DecompLink& dl = rule.internal_links[i];
    internal_links.push_back(sg::SgLink{
        nf_id + ".l" + std::to_string(i),
        model::PortRef{nf_id + "." + dl.from.node, dl.from.port},
        model::PortRef{nf_id + "." + dl.to.node, dl.to.port},
        dl.bandwidth_factor * max_bw});
  }

  std::map<int, model::PortRef> redirect;
  for (const auto& [abstract_port, component_port] : rule.port_map) {
    redirect.emplace(abstract_port,
                     model::PortRef{nf_id + "." + component_port.node,
                                    component_port.port});
  }

  return sg.replace_nf(nf_id, components, internal_links, redirect);
}

Result<std::size_t> expand_all(sg::ServiceGraph& sg, const NfCatalog& catalog,
                               const DecompositionChooser& chooser,
                               int max_depth) {
  const DecompositionChooser pick =
      chooser ? chooser
              : [](const sg::SgNf&, const std::vector<Decomposition>& rules) {
                  return &rules.front();
                };
  std::size_t applied = 0;
  for (int round = 0; round < max_depth; ++round) {
    // Collect this round's applications first: applying mutates sg.nfs().
    std::vector<std::pair<std::string, const Decomposition*>> batch;
    for (const auto& [id, nf] : sg.nfs()) {
      const auto& rules = catalog.decompositions_of(nf.type);
      if (rules.empty()) continue;
      if (const Decomposition* rule = pick(nf, rules)) {
        batch.emplace_back(id, rule);
      }
    }
    if (batch.empty()) return applied;
    for (const auto& [id, rule] : batch) {
      UNIFY_RETURN_IF_ERROR(apply_decomposition(sg, id, *rule));
      ++applied;
    }
  }
  // One more scan: anything still decomposable means we hit the depth cap.
  for (const auto& [id, nf] : sg.nfs()) {
    if (!catalog.decompositions_of(nf.type).empty()) {
      return Error{ErrorCode::kInfeasible,
                   "decomposition did not converge within depth limit"};
    }
  }
  return applied;
}

DecompositionChooser random_chooser(Rng& rng) {
  return [&rng](const sg::SgNf&,
                const std::vector<Decomposition>& rules) -> const Decomposition* {
    return &rules[rng.next_below(rules.size())];
  };
}

}  // namespace unify::catalog
