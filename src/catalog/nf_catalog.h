// NF catalog: the "plug and play NF implementations" registry of ESCAPEv2.
//
// Maps abstract NF type names to resource footprints and, per type, zero or
// more decomposition rules: alternative realizations of the abstract NF as
// an interconnection of component NFs (paper §2 and [Sahhaf et al., NetSoft
// 2015]). The mapper consults the catalog both for footprints and for
// decomposition choices.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "catalog/decomposition.h"
#include "model/resources.h"
#include "util/result.h"

namespace unify::catalog {

/// One NF type as advertised to the service layer.
struct NfType {
  std::string name;
  model::Resources requirement;
  int port_count = 2;
  std::string description;
};

class NfCatalog {
 public:
  NfCatalog() = default;

  Result<void> register_type(NfType type);
  /// The decomposition's target and all component types must already be
  /// registered (components may themselves be decomposable).
  Result<void> register_decomposition(Decomposition decomposition);

  [[nodiscard]] const NfType* find(const std::string& name) const noexcept;
  [[nodiscard]] bool has(const std::string& name) const noexcept {
    return find(name) != nullptr;
  }

  /// Resource footprint for an abstract NF: the catalog entry, unless the
  /// service graph overrides it.
  [[nodiscard]] Result<model::Resources> footprint(
      const std::string& type, const model::Resources& override_req) const;

  /// All decompositions registered for `type` (empty when atomic).
  [[nodiscard]] const std::vector<Decomposition>& decompositions_of(
      const std::string& type) const noexcept;

  [[nodiscard]] const std::map<std::string, NfType>& types() const noexcept {
    return types_;
  }
  [[nodiscard]] std::size_t decomposition_count() const noexcept;

 private:
  std::map<std::string, NfType> types_;
  std::map<std::string, std::vector<Decomposition>> decompositions_;
};

/// The catalog used by examples and benchmarks: a dozen common NF types
/// (firewall, nat, dpi, lb, cache, vpn, ...) and several decomposition
/// rules, including a recursive one (secure-gw -> firewall+ids, where
/// firewall itself decomposes).
[[nodiscard]] NfCatalog default_catalog();

}  // namespace unify::catalog
