#include "catalog/nf_catalog.h"

namespace unify::catalog {

Result<void> NfCatalog::register_type(NfType type) {
  if (type.name.empty()) {
    return Error{ErrorCode::kInvalidArgument, "NF type name must not be empty"};
  }
  if (types_.count(type.name) != 0) {
    return Error{ErrorCode::kAlreadyExists, "NF type " + type.name};
  }
  if (type.requirement.negative() || type.port_count <= 0) {
    return Error{ErrorCode::kInvalidArgument,
                 "NF type " + type.name + " has invalid footprint"};
  }
  types_.emplace(type.name, std::move(type));
  return Result<void>::success();
}

Result<void> NfCatalog::register_decomposition(Decomposition decomposition) {
  if (decomposition.id.empty()) {
    return Error{ErrorCode::kInvalidArgument, "rule id must not be empty"};
  }
  if (!has(decomposition.target_type)) {
    return Error{ErrorCode::kNotFound,
                 "rule " + decomposition.id + " targets unregistered type " +
                     decomposition.target_type};
  }
  if (decomposition.components.empty()) {
    return Error{ErrorCode::kInvalidArgument,
                 "rule " + decomposition.id + " has no components"};
  }
  for (const DecompComponent& c : decomposition.components) {
    if (!has(c.type)) {
      return Error{ErrorCode::kNotFound,
                   "rule " + decomposition.id + " uses unregistered type " +
                       c.type};
    }
    if (c.type == decomposition.target_type) {
      return Error{ErrorCode::kInvalidArgument,
                   "rule " + decomposition.id +
                       " is directly self-recursive on " + c.type};
    }
  }
  for (auto& existing : decompositions_[decomposition.target_type]) {
    if (existing.id == decomposition.id) {
      return Error{ErrorCode::kAlreadyExists, "rule " + decomposition.id};
    }
  }
  decompositions_[decomposition.target_type].push_back(
      std::move(decomposition));
  return Result<void>::success();
}

const NfType* NfCatalog::find(const std::string& name) const noexcept {
  const auto it = types_.find(name);
  return it == types_.end() ? nullptr : &it->second;
}

Result<model::Resources> NfCatalog::footprint(
    const std::string& type, const model::Resources& override_req) const {
  if (!override_req.is_zero()) return override_req;
  const NfType* t = find(type);
  if (t == nullptr) {
    return Error{ErrorCode::kNotFound, "NF type " + type + " not in catalog"};
  }
  return t->requirement;
}

const std::vector<Decomposition>& NfCatalog::decompositions_of(
    const std::string& type) const noexcept {
  static const std::vector<Decomposition> kEmpty;
  const auto it = decompositions_.find(type);
  return it == decompositions_.end() ? kEmpty : it->second;
}

std::size_t NfCatalog::decomposition_count() const noexcept {
  std::size_t n = 0;
  for (const auto& [type, rules] : decompositions_) n += rules.size();
  return n;
}

NfCatalog default_catalog() {
  NfCatalog cat;
  const auto add = [&cat](const char* name, double cpu, double mem,
                          double storage, int ports, const char* desc) {
    auto r = cat.register_type(
        NfType{name, model::Resources{cpu, mem, storage}, ports, desc});
    (void)r;
  };
  // Atomic packet functions.
  add("fw-lite", 1, 512, 1, 2, "stateless ACL firewall");
  add("fw-stateful", 2, 1024, 2, 2, "stateful connection-tracking firewall");
  add("ids", 2, 2048, 4, 2, "intrusion detection sensor");
  add("nat", 1, 512, 1, 2, "source NAT");
  add("dpi", 4, 4096, 8, 2, "deep packet inspection");
  add("lb", 1, 1024, 1, 3, "L4 load balancer");
  add("cache", 2, 4096, 50, 2, "transparent HTTP cache");
  add("vpn", 2, 1024, 2, 2, "IPsec gateway");
  add("monitor", 1, 512, 5, 2, "passive flow monitor");
  add("transcoder", 4, 2048, 4, 2, "video transcoder");
  add("compressor", 2, 1024, 1, 2, "payload compressor");
  add("parental-filter", 1, 1024, 2, 2, "URL filter");

  // Composite (decomposable) types. Footprints are the monolithic
  // realization; the decompositions are the alternative.
  add("firewall", 3, 2048, 4, 2, "full firewall (decomposable)");
  add("secure-gw", 6, 6144, 10, 2, "security gateway (decomposable)");
  add("cdn-edge", 5, 6144, 60, 2, "CDN edge (decomposable)");

  using model::PortRef;
  // firewall -> fw-lite -> fw-stateful pipeline (port 0 in, port 1 out).
  {
    Decomposition d;
    d.id = "firewall-pipeline";
    d.target_type = "firewall";
    d.components = {{"acl", "fw-lite", 2}, {"state", "fw-stateful", 2}};
    d.internal_links = {{PortRef{"acl", 1}, PortRef{"state", 0}, 1.0}};
    d.port_map = {{0, PortRef{"acl", 0}}, {1, PortRef{"state", 1}}};
    (void)cat.register_decomposition(std::move(d));
  }
  // secure-gw -> firewall + ids (recursive: firewall decomposes further).
  {
    Decomposition d;
    d.id = "secure-gw-split";
    d.target_type = "secure-gw";
    d.components = {{"fw", "firewall", 2}, {"ids", "ids", 2}};
    d.internal_links = {{PortRef{"fw", 1}, PortRef{"ids", 0}, 1.0}};
    d.port_map = {{0, PortRef{"fw", 0}}, {1, PortRef{"ids", 1}}};
    (void)cat.register_decomposition(std::move(d));
  }
  // secure-gw alternative: vpn + dpi.
  {
    Decomposition d;
    d.id = "secure-gw-vpn";
    d.target_type = "secure-gw";
    d.components = {{"vpn", "vpn", 2}, {"dpi", "dpi", 2}};
    d.internal_links = {{PortRef{"vpn", 1}, PortRef{"dpi", 0}, 1.0}};
    d.port_map = {{0, PortRef{"vpn", 0}}, {1, PortRef{"dpi", 1}}};
    (void)cat.register_decomposition(std::move(d));
  }
  // cdn-edge -> cache + lb + monitor.
  {
    Decomposition d;
    d.id = "cdn-edge-split";
    d.target_type = "cdn-edge";
    d.components = {{"lb", "lb", 3}, {"cache", "cache", 2},
                    {"mon", "monitor", 2}};
    d.internal_links = {{PortRef{"lb", 1}, PortRef{"cache", 0}, 1.0},
                        {PortRef{"cache", 1}, PortRef{"mon", 0}, 1.0}};
    d.port_map = {{0, PortRef{"lb", 0}}, {1, PortRef{"mon", 1}}};
    (void)cat.register_decomposition(std::move(d));
  }
  return cat;
}

}  // namespace unify::catalog
