// JSON codec for NF catalogs: operators ship NF types and decomposition
// rules as data ("plug and play NF implementations ... NF decomposition
// models", paper §2) instead of code.
//
// Schema:
//   {"types": [{"name","cpu","mem","storage","ports","description"}],
//    "decompositions": [{"id","target",
//       "components": [{"suffix","type","ports"}],
//       "links": [{"from":"suffix:port","to":"suffix:port","factor":1.0}],
//       "port_map": {"0":"suffix:port", "1":"suffix:port"}}]}
#pragma once

#include "catalog/nf_catalog.h"
#include "json/json.h"
#include "util/result.h"

namespace unify::catalog {

[[nodiscard]] json::Value to_json(const NfCatalog& catalog);
[[nodiscard]] Result<NfCatalog> catalog_from_json(const json::Value& value);
[[nodiscard]] std::string to_json_string(const NfCatalog& catalog);
[[nodiscard]] Result<NfCatalog> catalog_from_json_string(
    std::string_view text);

}  // namespace unify::catalog
