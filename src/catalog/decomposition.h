// NF decomposition rules and their application to service graphs.
//
// A decomposition replaces one abstract NF with a small graph of component
// NFs. Components are named by suffix; applying the rule to NF "gw0" with
// components {fw, ids} creates nodes "gw0.fw" and "gw0.ids". External chain
// links that ended on the abstract NF's ports are re-pointed through the
// rule's port map; internal links carry a bandwidth factor relative to the
// largest external demand on the NF.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sg/service_graph.h"
#include "util/result.h"
#include "util/rng.h"

namespace unify::catalog {

struct DecompComponent {
  std::string suffix;  ///< appended as "<nf>.<suffix>"
  std::string type;    ///< catalog type of the component
  int port_count = 2;
};

/// Internal link between component ports. Node fields hold *suffixes*.
struct DecompLink {
  model::PortRef from;
  model::PortRef to;
  double bandwidth_factor = 1.0;  ///< x the max external bandwidth of the NF
};

struct Decomposition {
  std::string id;           ///< unique rule name, e.g. "fw-as-pipeline"
  std::string target_type;  ///< abstract type this rule decomposes
  std::vector<DecompComponent> components;
  std::vector<DecompLink> internal_links;
  /// abstract port -> (component suffix, component port)
  std::map<int, model::PortRef> port_map;
};

/// Applies `rule` to NF `nf_id` inside `sg` (in place). Fails when the NF is
/// missing, its type differs from the rule's target, or the rule is
/// malformed w.r.t. the NF's external links.
[[nodiscard]] Result<void> apply_decomposition(sg::ServiceGraph& sg,
                                               const std::string& nf_id,
                                               const Decomposition& rule);

class NfCatalog;  // defined in nf_catalog.h

/// Strategy hook: given the NF and its candidate rules, pick one (or none,
/// returning nullptr, to keep the NF abstract).
using DecompositionChooser = std::function<const Decomposition*(
    const sg::SgNf& nf, const std::vector<Decomposition>& candidates)>;

/// Expands every decomposable NF of `sg` recursively (components that are
/// themselves decomposable are expanded too) until fixpoint or
/// `max_depth` rounds. The default chooser picks the first rule.
/// Returns the number of rule applications performed.
[[nodiscard]] Result<std::size_t> expand_all(
    sg::ServiceGraph& sg, const NfCatalog& catalog,
    const DecompositionChooser& chooser = {}, int max_depth = 8);

/// Chooser picking uniformly at random among the candidates (never keeping
/// the NF abstract); useful for workload generation.
[[nodiscard]] DecompositionChooser random_chooser(Rng& rng);

}  // namespace unify::catalog
