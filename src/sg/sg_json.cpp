#include "sg/sg_json.h"

#include <limits>

#include "model/nffg_json.h"

namespace unify::sg {

namespace {
using json::Array;
using json::Object;
using json::Value;
}  // namespace

json::Value to_json(const ServiceGraph& sg) {
  Object root;
  root.set("id", sg.id());
  if (!sg.name().empty()) root.set("name", sg.name());

  Array saps;
  for (const auto& [id, name] : sg.saps()) {
    Object o;
    o.set("id", id);
    if (!name.empty()) o.set("name", name);
    saps.emplace_back(std::move(o));
  }
  root.set("saps", std::move(saps));

  Array nfs;
  for (const auto& [id, nf] : sg.nfs()) {
    Object o;
    o.set("id", nf.id);
    o.set("type", nf.type);
    o.set("ports", nf.port_count);
    if (!nf.requirement_override.is_zero()) {
      Object res;
      res.set("cpu", nf.requirement_override.cpu);
      res.set("mem", nf.requirement_override.mem);
      res.set("storage", nf.requirement_override.storage);
      o.set("resources", std::move(res));
    }
    nfs.emplace_back(std::move(o));
  }
  root.set("nfs", std::move(nfs));

  Array links;
  for (const SgLink& l : sg.links()) {
    Object o;
    o.set("id", l.id);
    o.set("from", l.from.to_string());
    o.set("to", l.to.to_string());
    o.set("bandwidth", l.bandwidth);
    links.emplace_back(std::move(o));
  }
  root.set("links", std::move(links));

  Array constraints;
  for (const PlacementConstraint& c : sg.constraints()) {
    Object o;
    o.set("kind", to_string(c.kind));
    o.set("nf", c.nf_a);
    if (c.kind == ConstraintKind::kAntiAffinity) {
      o.set("peer", c.nf_b);
    } else {
      o.set("host", c.host);
    }
    constraints.emplace_back(std::move(o));
  }
  if (!constraints.empty()) root.set("constraints", std::move(constraints));

  Array reqs;
  for (const E2eRequirement& r : sg.requirements()) {
    Object o;
    o.set("id", r.id);
    o.set("from", r.from_sap);
    o.set("to", r.to_sap);
    if (r.max_delay != std::numeric_limits<double>::infinity()) {
      o.set("max_delay", r.max_delay);
    }
    if (r.min_bandwidth != 0) o.set("min_bandwidth", r.min_bandwidth);
    reqs.emplace_back(std::move(o));
  }
  root.set("requirements", std::move(reqs));
  return Value{std::move(root)};
}

Result<ServiceGraph> sg_from_json(const json::Value& value) {
  if (!value.is_object()) {
    return Error{ErrorCode::kProtocol, "service graph must be a JSON object"};
  }
  ServiceGraph sg{value.get_string("id")};

  const auto each = [&](const char* key, auto fn) -> Result<void> {
    const Value* arr = value.get(key);
    if (arr == nullptr) return Result<void>::success();
    if (!arr->is_array()) {
      return Error{ErrorCode::kProtocol,
                   std::string(key) + " must be an array"};
    }
    for (const Value& item : arr->as_array()) {
      if (!item.is_object()) {
        return Error{ErrorCode::kProtocol,
                     std::string(key) + " entries must be objects"};
      }
      UNIFY_RETURN_IF_ERROR(fn(item));
    }
    return Result<void>::success();
  };

  UNIFY_RETURN_IF_ERROR(each("saps", [&](const Value& item) {
    return sg.add_sap(item.get_string("id"), item.get_string("name"));
  }));
  UNIFY_RETURN_IF_ERROR(each("nfs", [&](const Value& item) -> Result<void> {
    SgNf nf;
    nf.id = item.get_string("id");
    nf.type = item.get_string("type");
    nf.port_count = static_cast<int>(item.get_int("ports", 2));
    if (const Value* res = item.get("resources")) {
      nf.requirement_override.cpu = res->get_number("cpu");
      nf.requirement_override.mem = res->get_number("mem");
      nf.requirement_override.storage = res->get_number("storage");
    }
    return sg.add_nf(std::move(nf));
  }));
  UNIFY_RETURN_IF_ERROR(each("links", [&](const Value& item) -> Result<void> {
    SgLink l;
    l.id = item.get_string("id");
    UNIFY_ASSIGN_OR_RETURN(
        l.from, model::port_ref_from_string(item.get_string("from")));
    UNIFY_ASSIGN_OR_RETURN(
        l.to, model::port_ref_from_string(item.get_string("to")));
    l.bandwidth = item.get_number("bandwidth");
    return sg.add_link(std::move(l));
  }));
  UNIFY_RETURN_IF_ERROR(
      each("constraints", [&](const Value& item) -> Result<void> {
        PlacementConstraint c;
        const std::string kind = item.get_string("kind");
        if (kind == "anti-affinity") {
          c.kind = ConstraintKind::kAntiAffinity;
          c.nf_b = item.get_string("peer");
        } else if (kind == "pin") {
          c.kind = ConstraintKind::kPin;
          c.host = item.get_string("host");
        } else if (kind == "forbid") {
          c.kind = ConstraintKind::kForbid;
          c.host = item.get_string("host");
        } else {
          return Error{ErrorCode::kProtocol,
                       "unknown constraint kind '" + kind + "'"};
        }
        c.nf_a = item.get_string("nf");
        return sg.add_constraint(std::move(c));
      }));
  UNIFY_RETURN_IF_ERROR(
      each("requirements", [&](const Value& item) -> Result<void> {
        E2eRequirement r;
        r.id = item.get_string("id");
        r.from_sap = item.get_string("from");
        r.to_sap = item.get_string("to");
        r.max_delay = item.get_number(
            "max_delay", std::numeric_limits<double>::infinity());
        r.min_bandwidth = item.get_number("min_bandwidth");
        return sg.add_requirement(std::move(r));
      }));
  return sg;
}

std::string to_json_string(const ServiceGraph& sg) {
  return to_json(sg).dump();
}

Result<ServiceGraph> sg_from_json_string(std::string_view text) {
  UNIFY_ASSIGN_OR_RETURN(json::Value value, json::parse(text));
  return sg_from_json(value);
}

}  // namespace unify::sg
