// Service graph: the user-facing description of a service chain.
//
// Users of the service layer describe *what* they want — abstract NFs wired
// between Service Access Points, with bandwidth per chain link and
// end-to-end delay/bandwidth requirements between arbitrary SAP pairs — and
// the orchestration stack decides *where* it runs. This mirrors the paper's
// service layer, where requests carry "bandwidth or delay constraints
// between arbitrary elements in the service graph".
#pragma once

#include <limits>
#include <map>
#include <string>
#include <vector>

#include "model/nffg.h"  // PortRef, Resources
#include "util/result.h"

namespace unify::sg {

using model::PortRef;
using model::Resources;

/// An abstract NF in the request: type resolved against the NF catalog.
/// `requirement_override` (when non-zero) replaces the catalog footprint.
struct SgNf {
  std::string id;
  std::string type;
  int port_count = 2;
  Resources requirement_override;

  friend bool operator==(const SgNf& a, const SgNf& b) noexcept {
    return a.id == b.id && a.type == b.type &&
           a.port_count == b.port_count &&
           a.requirement_override == b.requirement_override;
  }
};

/// A directed chain link: traffic from one port to another with a bandwidth
/// demand. Endpoints are SAP ports (port 0) or NF ports.
struct SgLink {
  std::string id;
  PortRef from;
  PortRef to;
  double bandwidth = 0;

  friend bool operator==(const SgLink& a, const SgLink& b) noexcept {
    return a.id == b.id && a.from == b.from && a.to == b.to &&
           a.bandwidth == b.bandwidth;
  }
};

/// End-to-end requirement between two SAPs, evaluated along the chain.
struct E2eRequirement {
  std::string id;
  std::string from_sap;
  std::string to_sap;
  double max_delay = std::numeric_limits<double>::infinity();  ///< ms
  double min_bandwidth = 0;                                    ///< Mbit/s

  friend bool operator==(const E2eRequirement& a,
                         const E2eRequirement& b) noexcept {
    return a.id == b.id && a.from_sap == b.from_sap &&
           a.to_sap == b.to_sap && a.max_delay == b.max_delay &&
           a.min_bandwidth == b.min_bandwidth;
  }
};

/// Placement constraints are shared with the virtualizer model so they can
/// ride inside configurations across the Unify interface.
using ConstraintKind = model::ConstraintKind;
using PlacementConstraint = model::PlacementConstraint;

class ServiceGraph {
 public:
  ServiceGraph() = default;
  explicit ServiceGraph(std::string id, std::string name = {})
      : id_(std::move(id)), name_(std::move(name)) {}

  [[nodiscard]] const std::string& id() const noexcept { return id_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  void set_id(std::string id) { id_ = std::move(id); }

  Result<void> add_sap(std::string id, std::string name = {});
  Result<void> add_nf(SgNf nf);
  /// Endpoints must exist; SAP endpoints must use port 0; NF ports must be
  /// within the NF's port_count.
  Result<void> add_link(SgLink link);
  /// Requirement endpoints must be SAPs of this graph.
  Result<void> add_requirement(E2eRequirement req);

  /// Referenced NFs must exist; pin/forbid need a host name.
  Result<void> add_constraint(PlacementConstraint constraint);
  [[nodiscard]] const std::vector<PlacementConstraint>& constraints()
      const noexcept {
    return constraints_;
  }

  Result<void> remove_nf(const std::string& id);

  [[nodiscard]] bool has_sap(const std::string& id) const noexcept {
    return saps_.count(id) != 0;
  }
  [[nodiscard]] const SgNf* find_nf(const std::string& id) const noexcept;
  [[nodiscard]] const SgLink* find_link(const std::string& id) const noexcept;

  [[nodiscard]] const std::map<std::string, std::string>& saps()
      const noexcept {
    return saps_;
  }
  [[nodiscard]] const std::map<std::string, SgNf>& nfs() const noexcept {
    return nfs_;
  }
  [[nodiscard]] const std::vector<SgLink>& links() const noexcept {
    return links_;
  }
  [[nodiscard]] const std::vector<E2eRequirement>& requirements()
      const noexcept {
    return requirements_;
  }

  /// Structural validation (duplicate ids, dangling refs, port ranges,
  /// negative demands). Empty result = sound.
  [[nodiscard]] std::vector<std::string> validate() const;

  /// The chain serving a requirement: the sequence of SgLinks on the
  /// (hop-minimal) directed path from `from_sap` to `to_sap`. Fails with
  /// kInfeasible when no directed path exists in the service graph.
  [[nodiscard]] Result<std::vector<const SgLink*>> chain_for(
      const E2eRequirement& req) const;

  /// NF ids in chain order for a requirement (derived from chain_for).
  [[nodiscard]] Result<std::vector<std::string>> nf_sequence_for(
      const E2eRequirement& req) const;

  /// Replaces NF `nf_id` by new nodes/links (used by NF decomposition).
  /// `port_redirect(old_port)` names the replacement endpoint for every
  /// external link that terminated at (nf_id, old_port).
  Result<void> replace_nf(
      const std::string& nf_id, const std::vector<SgNf>& components,
      const std::vector<SgLink>& internal_links,
      const std::map<int, PortRef>& port_redirect);

  friend bool operator==(const ServiceGraph& a, const ServiceGraph& b);

 private:
  [[nodiscard]] bool endpoint_ok(const PortRef& ref) const noexcept;

  std::string id_;
  std::string name_;
  std::map<std::string, std::string> saps_;  // id -> display name
  std::map<std::string, SgNf> nfs_;
  std::vector<SgLink> links_;
  std::vector<E2eRequirement> requirements_;
  std::vector<PlacementConstraint> constraints_;
};

/// Builds the classic linear chain: sap_in -> nf1 -> ... -> nfN -> sap_out,
/// each NF entered at port 0 and left at port 1, all links carrying
/// `bandwidth`, with one end-to-end requirement (max_delay, bandwidth).
/// NF ids are "<type><index>" (fw0, dpi1, ...).
[[nodiscard]] ServiceGraph make_chain(
    const std::string& id, const std::string& sap_in,
    const std::vector<std::string>& nf_types, const std::string& sap_out,
    double bandwidth, double max_delay);

}  // namespace unify::sg
