#include "sg/service_graph.h"

#include <algorithm>
#include <queue>
#include <set>

namespace unify::sg {

Result<void> ServiceGraph::add_sap(std::string id, std::string name) {
  if (id.empty()) {
    return Error{ErrorCode::kInvalidArgument, "SAP id must not be empty"};
  }
  if (saps_.count(id) != 0 || nfs_.count(id) != 0) {
    return Error{ErrorCode::kAlreadyExists, "node " + id};
  }
  saps_.emplace(std::move(id), std::move(name));
  return Result<void>::success();
}

Result<void> ServiceGraph::add_nf(SgNf nf) {
  if (nf.id.empty()) {
    return Error{ErrorCode::kInvalidArgument, "NF id must not be empty"};
  }
  if (saps_.count(nf.id) != 0 || nfs_.count(nf.id) != 0) {
    return Error{ErrorCode::kAlreadyExists, "node " + nf.id};
  }
  if (nf.port_count <= 0) {
    return Error{ErrorCode::kInvalidArgument,
                 "NF " + nf.id + " must have at least one port"};
  }
  nfs_.emplace(nf.id, std::move(nf));
  return Result<void>::success();
}

bool ServiceGraph::endpoint_ok(const PortRef& ref) const noexcept {
  if (saps_.count(ref.node) != 0) return ref.port == 0;
  const auto it = nfs_.find(ref.node);
  return it != nfs_.end() && ref.port >= 0 &&
         ref.port < it->second.port_count;
}

Result<void> ServiceGraph::add_link(SgLink link) {
  if (link.id.empty()) {
    return Error{ErrorCode::kInvalidArgument, "link id must not be empty"};
  }
  if (find_link(link.id) != nullptr) {
    return Error{ErrorCode::kAlreadyExists, "link " + link.id};
  }
  if (link.bandwidth < 0) {
    return Error{ErrorCode::kInvalidArgument,
                 "link " + link.id + " has negative bandwidth"};
  }
  for (const PortRef* ref : {&link.from, &link.to}) {
    if (!endpoint_ok(*ref)) {
      return Error{ErrorCode::kNotFound,
                   "link " + link.id + " endpoint " + ref->to_string()};
    }
  }
  links_.push_back(std::move(link));
  return Result<void>::success();
}

Result<void> ServiceGraph::add_requirement(E2eRequirement req) {
  if (req.id.empty()) {
    return Error{ErrorCode::kInvalidArgument,
                 "requirement id must not be empty"};
  }
  const auto exists = std::any_of(
      requirements_.begin(), requirements_.end(),
      [&](const E2eRequirement& r) { return r.id == req.id; });
  if (exists) {
    return Error{ErrorCode::kAlreadyExists, "requirement " + req.id};
  }
  for (const std::string* sap : {&req.from_sap, &req.to_sap}) {
    if (saps_.count(*sap) == 0) {
      return Error{ErrorCode::kNotFound, "requirement SAP " + *sap};
    }
  }
  if (req.max_delay <= 0 || req.min_bandwidth < 0) {
    return Error{ErrorCode::kInvalidArgument,
                 "requirement " + req.id + " has non-positive constraints"};
  }
  requirements_.push_back(std::move(req));
  return Result<void>::success();
}

Result<void> ServiceGraph::add_constraint(PlacementConstraint constraint) {
  if (nfs_.count(constraint.nf_a) == 0) {
    return Error{ErrorCode::kNotFound, "constraint NF " + constraint.nf_a};
  }
  if (constraint.kind == ConstraintKind::kAntiAffinity) {
    if (nfs_.count(constraint.nf_b) == 0) {
      return Error{ErrorCode::kNotFound, "constraint NF " + constraint.nf_b};
    }
    if (constraint.nf_a == constraint.nf_b) {
      return Error{ErrorCode::kInvalidArgument,
                   "anti-affinity of an NF with itself"};
    }
  } else if (constraint.host.empty()) {
    return Error{ErrorCode::kInvalidArgument,
                 "pin/forbid constraints need a host"};
  }
  constraints_.push_back(std::move(constraint));
  return Result<void>::success();
}

Result<void> ServiceGraph::remove_nf(const std::string& id) {
  if (nfs_.erase(id) == 0) {
    return Error{ErrorCode::kNotFound, "NF " + id};
  }
  links_.erase(std::remove_if(links_.begin(), links_.end(),
                              [&](const SgLink& l) {
                                return l.from.node == id || l.to.node == id;
                              }),
               links_.end());
  return Result<void>::success();
}

const SgNf* ServiceGraph::find_nf(const std::string& id) const noexcept {
  const auto it = nfs_.find(id);
  return it == nfs_.end() ? nullptr : &it->second;
}

const SgLink* ServiceGraph::find_link(const std::string& id) const noexcept {
  for (const SgLink& l : links_) {
    if (l.id == id) return &l;
  }
  return nullptr;
}

std::vector<std::string> ServiceGraph::validate() const {
  std::vector<std::string> problems;
  for (const SgLink& l : links_) {
    for (const PortRef* ref : {&l.from, &l.to}) {
      if (!endpoint_ok(*ref)) {
        problems.push_back("link " + l.id + " endpoint " + ref->to_string() +
                           " unresolvable");
      }
    }
    if (l.bandwidth < 0) {
      problems.push_back("link " + l.id + " has negative bandwidth");
    }
  }
  for (const E2eRequirement& r : requirements_) {
    for (const std::string* sap : {&r.from_sap, &r.to_sap}) {
      if (saps_.count(*sap) == 0) {
        problems.push_back("requirement " + r.id + " references unknown SAP " +
                           *sap);
      }
    }
  }
  for (const PlacementConstraint& c : constraints_) {
    if (nfs_.count(c.nf_a) == 0) {
      problems.push_back("constraint references unknown NF " + c.nf_a);
    }
    if (c.kind == ConstraintKind::kAntiAffinity && nfs_.count(c.nf_b) == 0) {
      problems.push_back("constraint references unknown NF " + c.nf_b);
    }
  }
  // Every NF should be on some link, otherwise it can never carry traffic.
  for (const auto& [id, nf] : nfs_) {
    const bool used = std::any_of(links_.begin(), links_.end(),
                                  [&](const SgLink& l) {
                                    return l.from.node == id ||
                                           l.to.node == id;
                                  });
    if (!used) problems.push_back("NF " + id + " is not on any chain link");
  }
  return problems;
}

Result<std::vector<const SgLink*>> ServiceGraph::chain_for(
    const E2eRequirement& req) const {
  // BFS over directed links from from_sap to to_sap; nodes are SAP/NF ids.
  std::map<std::string, const SgLink*> via;  // node -> link we arrived by
  std::queue<std::string> frontier;
  frontier.push(req.from_sap);
  std::set<std::string> seen{req.from_sap};
  while (!frontier.empty()) {
    const std::string node = frontier.front();
    frontier.pop();
    if (node == req.to_sap) break;
    for (const SgLink& l : links_) {
      if (l.from.node != node || seen.count(l.to.node) != 0) continue;
      seen.insert(l.to.node);
      via[l.to.node] = &l;
      frontier.push(l.to.node);
    }
  }
  if (via.count(req.to_sap) == 0) {
    return Error{ErrorCode::kInfeasible,
                 "no directed chain from " + req.from_sap + " to " +
                     req.to_sap};
  }
  std::vector<const SgLink*> chain;
  std::string cur = req.to_sap;
  while (cur != req.from_sap) {
    const SgLink* l = via.at(cur);
    chain.push_back(l);
    cur = l->from.node;
  }
  std::reverse(chain.begin(), chain.end());
  return chain;
}

Result<std::vector<std::string>> ServiceGraph::nf_sequence_for(
    const E2eRequirement& req) const {
  UNIFY_ASSIGN_OR_RETURN(auto chain, chain_for(req));
  std::vector<std::string> sequence;
  for (const SgLink* l : chain) {
    if (nfs_.count(l->to.node) != 0) sequence.push_back(l->to.node);
  }
  return sequence;
}

Result<void> ServiceGraph::replace_nf(
    const std::string& nf_id, const std::vector<SgNf>& components,
    const std::vector<SgLink>& internal_links,
    const std::map<int, PortRef>& port_redirect) {
  if (nfs_.count(nf_id) == 0) {
    return Error{ErrorCode::kNotFound, "NF " + nf_id};
  }
  // Collect external links touching the NF and verify every used port has a
  // redirect before mutating anything.
  for (const SgLink& l : links_) {
    for (const PortRef* ref : {&l.from, &l.to}) {
      if (ref->node == nf_id && port_redirect.count(ref->port) == 0) {
        return Error{ErrorCode::kInvalidArgument,
                     "no redirect for external port " + ref->to_string()};
      }
    }
  }

  nfs_.erase(nf_id);
  for (const SgNf& c : components) {
    UNIFY_RETURN_IF_ERROR(add_nf(c));
  }
  // Re-point external links in place (ids preserved: the chain's identity
  // does not change when an NF is decomposed).
  for (SgLink& l : links_) {
    if (l.from.node == nf_id) l.from = port_redirect.at(l.from.port);
    if (l.to.node == nf_id) l.to = port_redirect.at(l.to.port);
  }
  for (const SgLink& l : internal_links) {
    UNIFY_RETURN_IF_ERROR(add_link(l));
  }
  // Constraints naming the replaced NF apply to every component
  // (conservative: an anti-affinity or forbid on the abstract NF must hold
  // for whatever realizes it).
  std::vector<PlacementConstraint> rewritten;
  for (const PlacementConstraint& c : constraints_) {
    if (c.nf_a != nf_id && c.nf_b != nf_id) {
      rewritten.push_back(c);
      continue;
    }
    for (const SgNf& component : components) {
      PlacementConstraint copy = c;
      if (copy.nf_a == nf_id) copy.nf_a = component.id;
      if (copy.nf_b == nf_id) copy.nf_b = component.id;
      if (copy.kind == ConstraintKind::kAntiAffinity &&
          copy.nf_a == copy.nf_b) {
        continue;  // degenerate after substitution
      }
      rewritten.push_back(std::move(copy));
    }
  }
  constraints_ = std::move(rewritten);
  return Result<void>::success();
}

bool operator==(const ServiceGraph& a, const ServiceGraph& b) {
  return a.id_ == b.id_ && a.name_ == b.name_ && a.saps_ == b.saps_ &&
         a.nfs_ == b.nfs_ && a.links_ == b.links_ &&
         a.requirements_ == b.requirements_ &&
         a.constraints_ == b.constraints_;
}

ServiceGraph make_chain(const std::string& id, const std::string& sap_in,
                        const std::vector<std::string>& nf_types,
                        const std::string& sap_out, double bandwidth,
                        double max_delay) {
  ServiceGraph sg{id};
  (void)sg.add_sap(sap_in);
  (void)sg.add_sap(sap_out);
  std::vector<std::string> nf_ids;
  for (std::size_t i = 0; i < nf_types.size(); ++i) {
    const std::string nf_id = nf_types[i] + std::to_string(i);
    (void)sg.add_nf(SgNf{nf_id, nf_types[i], 2, {}});
    nf_ids.push_back(nf_id);
  }
  PortRef prev{sap_in, 0};
  for (std::size_t i = 0; i < nf_ids.size(); ++i) {
    (void)sg.add_link(SgLink{"cl" + std::to_string(i), prev,
                             PortRef{nf_ids[i], 0}, bandwidth});
    prev = PortRef{nf_ids[i], 1};
  }
  (void)sg.add_link(SgLink{"cl" + std::to_string(nf_ids.size()), prev,
                           PortRef{sap_out, 0}, bandwidth});
  (void)sg.add_requirement(
      E2eRequirement{"e2e", sap_in, sap_out, max_delay, bandwidth});
  return sg;
}

}  // namespace unify::sg
