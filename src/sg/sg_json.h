// JSON codec for service graphs — the payload of service requests submitted
// to the service layer (the programmatic stand-in for the paper's GUI).
//
// Schema:
//   {"id","name",
//    "saps":[{"id","name"}],
//    "nfs":[{"id","type","ports":n,"resources"?:{cpu,mem,storage}}],
//    "links":[{"id","from":"node:port","to":"node:port","bandwidth"}],
//    "constraints":[{"kind":"anti-affinity","nf","peer"} |
//                   {"kind":"pin"|"forbid","nf","host"}],
//    "requirements":[{"id","from","to","max_delay"?,"min_bandwidth"?}]}
#pragma once

#include "json/json.h"
#include "sg/service_graph.h"
#include "util/result.h"

namespace unify::sg {

[[nodiscard]] json::Value to_json(const ServiceGraph& sg);
[[nodiscard]] Result<ServiceGraph> sg_from_json(const json::Value& value);
[[nodiscard]] std::string to_json_string(const ServiceGraph& sg);
[[nodiscard]] Result<ServiceGraph> sg_from_json_string(std::string_view text);

}  // namespace unify::sg
