#include "infra/emu_network.h"

namespace unify::infra {

EmuNetwork::EmuNetwork(SimClock& clock, std::string name, EmuConfig config)
    : clock_(&clock), name_(std::move(name)), config_(config) {}

Result<void> EmuNetwork::add_switch(const std::string& id, int fabric_ports,
                                    model::Resources ee_capacity) {
  UNIFY_RETURN_IF_ERROR(
      fabric_.add_switch(id, fabric_ports + config_.ee_ports_per_switch));
  ExecutionEnvironment ee;
  ee.switch_id = id;
  ee.capacity = ee_capacity;
  ee.next_port = fabric_ports;  // EE block starts after public ports
  ees_.emplace(id, std::move(ee));
  fabric_ports_.emplace(id, fabric_ports);
  return Result<void>::success();
}

Result<void> EmuNetwork::connect(const std::string& a, int port_a,
                                 const std::string& b, int port_b,
                                 model::LinkAttrs attrs) {
  UNIFY_RETURN_IF_ERROR(fabric_.connect(a, port_a, b, port_b));
  wires_.push_back(WireInfo{a, port_a, b, port_b, attrs});
  return Result<void>::success();
}

Result<void> EmuNetwork::attach_sap(const std::string& sap,
                                    const std::string& sw, int port,
                                    model::LinkAttrs attrs) {
  UNIFY_RETURN_IF_ERROR(fabric_.attach(sap, sw, port));
  saps_.push_back(SapInfo{sap, sw, port, attrs});
  return Result<void>::success();
}

Result<void> EmuNetwork::start_click(const std::string& id,
                                     const std::string& type,
                                     const std::string& host,
                                     model::Resources usage, int port_count) {
  clock_->advance(config_.click_start_us);
  ++ops_;
  const auto ee_it = ees_.find(host);
  if (ee_it == ees_.end()) {
    return Error{ErrorCode::kNotFound, "EE " + host};
  }
  const auto existing = clicks_.find(id);
  if (existing != clicks_.end() && existing->second.running) {
    return Error{ErrorCode::kAlreadyExists, "click process " + id};
  }
  ExecutionEnvironment& ee = ee_it->second;
  const model::Resources residual = ee.capacity - ee.allocated;
  if (!residual.fits(usage)) {
    return Error{ErrorCode::kResourceExhausted,
                 "EE " + host + " residual " + residual.to_string() +
                     " < " + usage.to_string()};
  }
  ClickProcess proc;
  proc.id = id;
  proc.type = type;
  proc.host = host;
  proc.usage = usage;
  const int port_limit =
      fabric_ports_.at(host) + config_.ee_ports_per_switch;
  for (int p = 0; p < port_count; ++p) {
    int port;
    if (!ee.free_ports.empty()) {
      port = ee.free_ports.back();
      ee.free_ports.pop_back();
    } else if (ee.next_port < port_limit) {
      port = ee.next_port++;
    } else {
      return Error{ErrorCode::kResourceExhausted,
                   "EE ports exhausted on " + host};
    }
    UNIFY_RETURN_IF_ERROR(
        fabric_.attach(id + ":" + std::to_string(p), host, port));
    proc.switch_ports.push_back(port);
  }
  ee.allocated += usage;
  proc.running = true;
  clicks_[id] = std::move(proc);
  return Result<void>::success();
}

Result<void> EmuNetwork::stop_click(const std::string& id) {
  clock_->advance(config_.click_stop_us);
  ++ops_;
  const auto it = clicks_.find(id);
  if (it == clicks_.end() || !it->second.running) {
    return Error{ErrorCode::kNotFound, "click process " + id};
  }
  it->second.running = false;
  ExecutionEnvironment& ee = ees_.at(it->second.host);
  ee.allocated -= it->second.usage;
  for (std::size_t p = 0; p < it->second.switch_ports.size(); ++p) {
    (void)fabric_.detach(id + ":" + std::to_string(p));
    ee.free_ports.push_back(it->second.switch_ports[p]);
  }
  it->second.switch_ports.clear();
  return Result<void>::success();
}

const ClickProcess* EmuNetwork::find_click(const std::string& id) const noexcept {
  const auto it = clicks_.find(id);
  return it == clicks_.end() ? nullptr : &it->second;
}

Result<void> EmuNetwork::install_flow(const std::string& sw, FlowEntry entry) {
  FlowSwitch* fs = fabric_.find_switch(sw);
  if (fs == nullptr) {
    return Error{ErrorCode::kNotFound, "switch " + sw};
  }
  clock_->advance(config_.flow_mod_latency_us);
  ++ops_;
  return fs->install(std::move(entry));
}

Result<void> EmuNetwork::remove_flow(const std::string& sw,
                                     const std::string& entry_id) {
  FlowSwitch* fs = fabric_.find_switch(sw);
  if (fs == nullptr) {
    return Error{ErrorCode::kNotFound, "switch " + sw};
  }
  clock_->advance(config_.flow_mod_latency_us);
  ++ops_;
  return fs->remove(entry_id);
}

}  // namespace unify::infra
