// Substrate (BiS-BiS view) generators for tests and benchmarks: the
// synthetic stand-ins for the multi-domain testbeds of the demo.
#pragma once

#include <string>

#include "model/nffg.h"
#include "util/rng.h"

namespace unify::infra::topo {

struct TopoParams {
  model::Resources node_capacity{16, 16384, 200};
  double link_bandwidth = 10000;  ///< Mbit/s
  double link_delay = 0.5;        ///< ms
  double internal_delay = 0.05;   ///< ms per BiS-BiS crossing
  double sap_link_delay = 0.1;
};

/// Linear chain of `n` BiS-BiS with SAPs at both ends ("sap1", "sap2").
[[nodiscard]] model::Nffg line(int n, const TopoParams& params = {});

/// `n` BiS-BiS in a ring plus `sap1`..`sap<n_saps>` on distinct nodes.
[[nodiscard]] model::Nffg ring(int n, int n_saps,
                               const TopoParams& params = {});

/// Two-tier leaf/spine: `spines` top switches (no compute) fully meshed to
/// `leaves` BiS-BiS with compute; SAPs "sap1".."sap<n_saps>" on leaves.
[[nodiscard]] model::Nffg leaf_spine(int spines, int leaves, int n_saps,
                                     const TopoParams& params = {});

/// Erdos-Renyi-ish random connected graph of `n` nodes with expected degree
/// `degree`; guarantees connectivity by first building a random spanning
/// tree. SAPs "sap1".."sap<n_saps>" on random distinct nodes.
[[nodiscard]] model::Nffg random_connected(int n, double degree, int n_saps,
                                           Rng& rng,
                                           const TopoParams& params = {});

/// Seeded multi-domain substrate for the scale bench (total size
/// `domains * nodes_per_domain`, tested to 10^6 nodes): `domains` domains
/// of `nodes_per_domain` BiS-BiS each (ids "d<k>-bb<i>", domain label
/// "d<k>"), every domain internally connected by a bounded-degree random
/// spanning tree plus extra random edges up to expected degree `degree`,
/// and the domains stitched into a ring by one cross-domain gateway link
/// per consecutive pair. SAPs "sap1".."sap<n_saps>" land round-robin
/// across domains on random nodes. Node degree is capped (16 ports), so
/// memory stays linear in the node count.
[[nodiscard]] model::Nffg multi_domain(int domains, int nodes_per_domain,
                                       double degree, int n_saps, Rng& rng,
                                       const TopoParams& params = {});

}  // namespace unify::infra::topo
