// Substrate (BiS-BiS view) generators for tests and benchmarks: the
// synthetic stand-ins for the multi-domain testbeds of the demo.
#pragma once

#include <string>

#include "model/nffg.h"
#include "util/rng.h"

namespace unify::infra::topo {

struct TopoParams {
  model::Resources node_capacity{16, 16384, 200};
  double link_bandwidth = 10000;  ///< Mbit/s
  double link_delay = 0.5;        ///< ms
  double internal_delay = 0.05;   ///< ms per BiS-BiS crossing
  double sap_link_delay = 0.1;
};

/// Linear chain of `n` BiS-BiS with SAPs at both ends ("sap1", "sap2").
[[nodiscard]] model::Nffg line(int n, const TopoParams& params = {});

/// `n` BiS-BiS in a ring plus `sap1`..`sap<n_saps>` on distinct nodes.
[[nodiscard]] model::Nffg ring(int n, int n_saps,
                               const TopoParams& params = {});

/// Two-tier leaf/spine: `spines` top switches (no compute) fully meshed to
/// `leaves` BiS-BiS with compute; SAPs "sap1".."sap<n_saps>" on leaves.
[[nodiscard]] model::Nffg leaf_spine(int spines, int leaves, int n_saps,
                                     const TopoParams& params = {});

/// Erdos-Renyi-ish random connected graph of `n` nodes with expected degree
/// `degree`; guarantees connectivity by first building a random spanning
/// tree. SAPs "sap1".."sap<n_saps>" on random distinct nodes.
[[nodiscard]] model::Nffg random_connected(int n, double degree, int n_saps,
                                           Rng& rng,
                                           const TopoParams& params = {});

}  // namespace unify::infra::topo
