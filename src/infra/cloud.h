// Legacy data-center domain: an OpenStack-style compute service plus an
// OpenDaylight-style gateway steering fabric (paper: "clouds managed by
// OpenStack and OpenDaylight").
//
// Compute: hypervisors with capacities; VM placement via the nova-like
// filter (capacity) + weigh (least loaded) scheduler; VM boot is
// asynchronous on the simulation clock. Networking: the whole DC is
// advertised as one BiS-BiS; internally a single gateway logical switch
// steers traffic among external ports and VM NICs.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "infra/fabric.h"
#include "model/resources.h"
#include "util/result.h"
#include "util/sim_clock.h"

namespace unify::infra {

struct CloudConfig {
  SimTime api_latency_us = 2000;      ///< per REST-ish control call
  SimTime vm_boot_us = 1'500'000;     ///< BUILD -> ACTIVE
  SimTime flow_install_us = 800;      ///< ODL flow push
  int gateway_ports = 256;            ///< pre-provisioned gw switch size
  int external_ports = 4;             ///< gw ports reserved for uplinks
};

enum class VmStatus { kBuild, kActive, kDeleted, kError };
[[nodiscard]] const char* to_string(VmStatus status) noexcept;

struct Hypervisor {
  std::string id;
  model::Resources capacity;
  model::Resources allocated;
};

struct Vm {
  std::string id;
  std::string image;  ///< NF type name
  model::Resources flavor;
  std::string host;
  VmStatus status = VmStatus::kBuild;
  std::vector<int> nic_gw_ports;  ///< gateway ports of this VM's NICs
};

class Cloud {
 public:
  Cloud(SimClock& clock, std::string name, CloudConfig config = {});

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  /// The simulated time base every operation of this domain is charged
  /// against (shared machinery: concurrent control must serialize on it).
  [[nodiscard]] SimClock& clock() const noexcept { return *clock_; }

  Result<void> add_hypervisor(const std::string& id,
                              model::Resources capacity);

  /// Schedules and boots a VM with `nic_count` NICs attached to the
  /// gateway. Returns immediately with the VM in BUILD; it turns ACTIVE
  /// after vm_boot_us. Fails (kResourceExhausted) when no hypervisor fits.
  Result<void> boot_vm(const std::string& id, const std::string& image,
                       model::Resources flavor, int nic_count);
  Result<void> delete_vm(const std::string& id);
  [[nodiscard]] const Vm* find_vm(const std::string& id) const noexcept;

  /// Steering rule on the gateway. Endpoint names: "ext<k>" for external
  /// uplink k, or "<vm>:<nic>" for a VM NIC.
  Result<void> install_steering(const std::string& rule_id,
                                const std::string& from_endpoint,
                                const std::string& match_tag,
                                const std::string& to_endpoint,
                                const std::string& set_tag);
  Result<void> remove_steering(const std::string& rule_id);

  [[nodiscard]] const std::map<std::string, Hypervisor>& hypervisors()
      const noexcept {
    return hypervisors_;
  }
  [[nodiscard]] const std::map<std::string, Vm>& vms() const noexcept {
    return vms_;
  }
  [[nodiscard]] model::Resources total_capacity() const noexcept;
  [[nodiscard]] model::Resources total_allocated() const noexcept;
  [[nodiscard]] Fabric& fabric() noexcept { return fabric_; }
  [[nodiscard]] std::uint64_t api_calls() const noexcept { return api_calls_; }

 private:
  [[nodiscard]] Result<std::string> schedule(const model::Resources& flavor);

  SimClock* clock_;
  std::string name_;
  CloudConfig config_;
  std::map<std::string, Hypervisor> hypervisors_;
  std::map<std::string, Vm> vms_;
  Fabric fabric_;
  int next_gw_port_ = 0;
  std::vector<int> free_gw_ports_;
  std::uint64_t api_calls_ = 0;
};

}  // namespace unify::infra
