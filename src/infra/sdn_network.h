// Legacy OpenFlow network domain (the paper's POX-controlled domain).
//
// Pure forwarding: a fabric of OpenFlow switches, no compute. The
// controller API (install/remove flow) charges a per-flow-mod latency
// against the simulation clock, modelling the POX control channel round
// trip. Link attributes are kept per wire so the adapter can advertise an
// accurate view.
#pragma once

#include <map>
#include <string>

#include "infra/fabric.h"
#include "model/resources.h"
#include "util/result.h"
#include "util/sim_clock.h"

namespace unify::infra {

struct SdnConfig {
  SimTime flow_mod_latency_us = 500;  ///< controller->switch round trip
};

class SdnNetwork {
 public:
  SdnNetwork(SimClock& clock, std::string name, SdnConfig config = {});

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  /// The simulated time base every operation of this domain is charged
  /// against (shared machinery: concurrent control must serialize on it).
  [[nodiscard]] SimClock& clock() const noexcept { return *clock_; }

  // ------------------------------------------------- topology (build-time)
  Result<void> add_switch(const std::string& id, int port_count);
  Result<void> connect(const std::string& a, int port_a, const std::string& b,
                       int port_b, model::LinkAttrs attrs);
  Result<void> attach_sap(const std::string& sap, const std::string& sw,
                          int port, model::LinkAttrs attrs);

  // ------------------------------------------------ controller operations
  Result<void> install_flow(const std::string& sw, FlowEntry entry);
  Result<void> remove_flow(const std::string& sw, const std::string& entry_id);

  // ------------------------------------------------------------ inspection
  [[nodiscard]] const Fabric& fabric() const noexcept { return fabric_; }
  [[nodiscard]] Fabric& fabric() noexcept { return fabric_; }

  struct WireInfo {
    std::string a;
    int port_a;
    std::string b;
    int port_b;
    model::LinkAttrs attrs;
  };
  struct SapInfo {
    std::string sap;
    std::string sw;
    int port;
    model::LinkAttrs attrs;
  };
  [[nodiscard]] const std::vector<WireInfo>& wires() const noexcept {
    return wires_;
  }
  [[nodiscard]] const std::vector<SapInfo>& saps() const noexcept {
    return saps_;
  }
  [[nodiscard]] std::uint64_t flow_ops() const noexcept { return flow_ops_; }

 private:
  SimClock* clock_;
  std::string name_;
  SdnConfig config_;
  Fabric fabric_;
  std::vector<WireInfo> wires_;
  std::vector<SapInfo> saps_;
  std::uint64_t flow_ops_ = 0;
};

}  // namespace unify::infra
