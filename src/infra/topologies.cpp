#include "infra/topologies.h"

#include <cassert>
#include <set>

#include "model/nffg_builder.h"

namespace unify::infra::topo {

namespace {

std::string bb_name(int i) { return "bb" + std::to_string(i); }

model::BisBis node(const std::string& id, const TopoParams& params,
                   int ports) {
  return model::make_bisbis(id, params.node_capacity, ports,
                            params.internal_delay);
}

}  // namespace

model::Nffg line(int n, const TopoParams& params) {
  assert(n >= 1);
  model::Nffg g{"line-" + std::to_string(n)};
  for (int i = 0; i < n; ++i) {
    (void)g.add_bisbis(node(bb_name(i), params, 4));
  }
  for (int i = 0; i + 1 < n; ++i) {
    model::connect(g, bb_name(i), 2, bb_name(i + 1), 1,
                   {params.link_bandwidth, params.link_delay});
  }
  model::attach_sap(g, "sap1", bb_name(0), 0,
                    {params.link_bandwidth, params.sap_link_delay});
  model::attach_sap(g, "sap2", bb_name(n - 1), 0,
                    {params.link_bandwidth, params.sap_link_delay});
  return g;
}

model::Nffg ring(int n, int n_saps, const TopoParams& params) {
  assert(n >= 3 && n_saps <= n);
  model::Nffg g{"ring-" + std::to_string(n)};
  for (int i = 0; i < n; ++i) {
    (void)g.add_bisbis(node(bb_name(i), params, 4));
  }
  for (int i = 0; i < n; ++i) {
    model::connect(g, bb_name(i), 2, bb_name((i + 1) % n), 1,
                   {params.link_bandwidth, params.link_delay});
  }
  for (int s = 0; s < n_saps; ++s) {
    model::attach_sap(g, "sap" + std::to_string(s + 1),
                      bb_name(s * n / n_saps), 0,
                      {params.link_bandwidth, params.sap_link_delay});
  }
  return g;
}

model::Nffg leaf_spine(int spines, int leaves, int n_saps,
                       const TopoParams& params) {
  assert(spines >= 1 && leaves >= 1 && n_saps <= leaves);
  model::Nffg g{"leafspine-" + std::to_string(spines) + "x" +
                std::to_string(leaves)};
  for (int s = 0; s < spines; ++s) {
    model::BisBis spine =
        model::make_bisbis("spine" + std::to_string(s), {0, 0, 0},
                           leaves, params.internal_delay);
    (void)g.add_bisbis(std::move(spine));
  }
  for (int l = 0; l < leaves; ++l) {
    (void)g.add_bisbis(node("leaf" + std::to_string(l), params, spines + 1));
  }
  for (int s = 0; s < spines; ++s) {
    for (int l = 0; l < leaves; ++l) {
      model::connect(g, "spine" + std::to_string(s), l,
                     "leaf" + std::to_string(l), s + 1,
                     {params.link_bandwidth, params.link_delay});
    }
  }
  for (int s = 0; s < n_saps; ++s) {
    model::attach_sap(g, "sap" + std::to_string(s + 1),
                      "leaf" + std::to_string(s % leaves), 0,
                      {params.link_bandwidth, params.sap_link_delay});
  }
  return g;
}

model::Nffg random_connected(int n, double degree, int n_saps, Rng& rng,
                             const TopoParams& params) {
  assert(n >= 2 && n_saps <= n);
  model::Nffg g{"random-" + std::to_string(n)};
  // Ports: enough for the worst case; SAP + tree + extra edges.
  const int ports = n + 2;
  for (int i = 0; i < n; ++i) {
    (void)g.add_bisbis(node(bb_name(i), params, ports));
  }
  std::vector<int> next_port(static_cast<std::size_t>(n), 1);  // 0 for SAP
  std::set<std::pair<int, int>> edges;
  const auto add_edge = [&](int a, int b) {
    if (a == b) return;
    const auto key = std::minmax(a, b);
    if (!edges.insert({key.first, key.second}).second) return;
    model::connect(g, bb_name(a), next_port[static_cast<std::size_t>(a)]++,
                   bb_name(b), next_port[static_cast<std::size_t>(b)]++,
                   {params.link_bandwidth, params.link_delay});
  };
  // Random spanning tree: connect node i to a random earlier node.
  for (int i = 1; i < n; ++i) {
    add_edge(i, static_cast<int>(rng.next_below(static_cast<std::uint64_t>(i))));
  }
  // Extra edges to reach the requested expected degree (~degree*n/2 total).
  const auto target =
      static_cast<std::size_t>(degree * n / 2.0);
  std::size_t guard = 0;
  while (edges.size() < target && guard++ < static_cast<std::size_t>(n) * 20) {
    add_edge(static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n))),
             static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n))));
  }
  // SAPs on distinct random nodes.
  std::set<int> sap_nodes;
  while (static_cast<int>(sap_nodes.size()) < n_saps) {
    sap_nodes.insert(
        static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n))));
  }
  int s = 1;
  for (const int i : sap_nodes) {
    model::attach_sap(g, "sap" + std::to_string(s++), bb_name(i), 0,
                      {params.link_bandwidth, params.sap_link_delay});
  }
  return g;
}

}  // namespace unify::infra::topo
