#include "infra/topologies.h"

#include <cassert>
#include <set>

#include "model/nffg_builder.h"

namespace unify::infra::topo {

namespace {

std::string bb_name(int i) { return "bb" + std::to_string(i); }

model::BisBis node(const std::string& id, const TopoParams& params,
                   int ports) {
  return model::make_bisbis(id, params.node_capacity, ports,
                            params.internal_delay);
}

}  // namespace

model::Nffg line(int n, const TopoParams& params) {
  assert(n >= 1);
  model::Nffg g{"line-" + std::to_string(n)};
  for (int i = 0; i < n; ++i) {
    (void)g.add_bisbis(node(bb_name(i), params, 4));
  }
  for (int i = 0; i + 1 < n; ++i) {
    model::connect(g, bb_name(i), 2, bb_name(i + 1), 1,
                   {params.link_bandwidth, params.link_delay});
  }
  model::attach_sap(g, "sap1", bb_name(0), 0,
                    {params.link_bandwidth, params.sap_link_delay});
  model::attach_sap(g, "sap2", bb_name(n - 1), 0,
                    {params.link_bandwidth, params.sap_link_delay});
  return g;
}

model::Nffg ring(int n, int n_saps, const TopoParams& params) {
  assert(n >= 3 && n_saps <= n);
  model::Nffg g{"ring-" + std::to_string(n)};
  for (int i = 0; i < n; ++i) {
    (void)g.add_bisbis(node(bb_name(i), params, 4));
  }
  for (int i = 0; i < n; ++i) {
    model::connect(g, bb_name(i), 2, bb_name((i + 1) % n), 1,
                   {params.link_bandwidth, params.link_delay});
  }
  for (int s = 0; s < n_saps; ++s) {
    model::attach_sap(g, "sap" + std::to_string(s + 1),
                      bb_name(s * n / n_saps), 0,
                      {params.link_bandwidth, params.sap_link_delay});
  }
  return g;
}

model::Nffg leaf_spine(int spines, int leaves, int n_saps,
                       const TopoParams& params) {
  assert(spines >= 1 && leaves >= 1 && n_saps <= leaves);
  model::Nffg g{"leafspine-" + std::to_string(spines) + "x" +
                std::to_string(leaves)};
  for (int s = 0; s < spines; ++s) {
    model::BisBis spine =
        model::make_bisbis("spine" + std::to_string(s), {0, 0, 0},
                           leaves, params.internal_delay);
    (void)g.add_bisbis(std::move(spine));
  }
  for (int l = 0; l < leaves; ++l) {
    (void)g.add_bisbis(node("leaf" + std::to_string(l), params, spines + 1));
  }
  for (int s = 0; s < spines; ++s) {
    for (int l = 0; l < leaves; ++l) {
      model::connect(g, "spine" + std::to_string(s), l,
                     "leaf" + std::to_string(l), s + 1,
                     {params.link_bandwidth, params.link_delay});
    }
  }
  for (int s = 0; s < n_saps; ++s) {
    model::attach_sap(g, "sap" + std::to_string(s + 1),
                      "leaf" + std::to_string(s % leaves), 0,
                      {params.link_bandwidth, params.sap_link_delay});
  }
  return g;
}

model::Nffg random_connected(int n, double degree, int n_saps, Rng& rng,
                             const TopoParams& params) {
  assert(n >= 2 && n_saps <= n);
  model::Nffg g{"random-" + std::to_string(n)};
  // Ports: enough for the worst case; SAP + tree + extra edges.
  const int ports = n + 2;
  for (int i = 0; i < n; ++i) {
    (void)g.add_bisbis(node(bb_name(i), params, ports));
  }
  std::vector<int> next_port(static_cast<std::size_t>(n), 1);  // 0 for SAP
  std::set<std::pair<int, int>> edges;
  const auto add_edge = [&](int a, int b) {
    if (a == b) return;
    const auto key = std::minmax(a, b);
    if (!edges.insert({key.first, key.second}).second) return;
    model::connect(g, bb_name(a), next_port[static_cast<std::size_t>(a)]++,
                   bb_name(b), next_port[static_cast<std::size_t>(b)]++,
                   {params.link_bandwidth, params.link_delay});
  };
  // Random spanning tree: connect node i to a random earlier node.
  for (int i = 1; i < n; ++i) {
    add_edge(i, static_cast<int>(rng.next_below(static_cast<std::uint64_t>(i))));
  }
  // Extra edges to reach the requested expected degree (~degree*n/2 total).
  const auto target =
      static_cast<std::size_t>(degree * n / 2.0);
  std::size_t guard = 0;
  while (edges.size() < target && guard++ < static_cast<std::size_t>(n) * 20) {
    add_edge(static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n))),
             static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n))));
  }
  // SAPs on distinct random nodes.
  std::set<int> sap_nodes;
  while (static_cast<int>(sap_nodes.size()) < n_saps) {
    sap_nodes.insert(
        static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n))));
  }
  int s = 1;
  for (const int i : sap_nodes) {
    model::attach_sap(g, "sap" + std::to_string(s++), bb_name(i), 0,
                      {params.link_bandwidth, params.sap_link_delay});
  }
  return g;
}

model::Nffg multi_domain(int domains, int nodes_per_domain, double degree,
                         int n_saps, Rng& rng, const TopoParams& params) {
  assert(domains >= 1 && nodes_per_domain >= 1);
  model::Nffg g{"multidomain-" + std::to_string(domains) + "x" +
                std::to_string(nodes_per_domain)};
  // Fixed port budget per node: keeps memory linear in the node count
  // (random_connected's n+2 ports would be quadratic at 10^5+ nodes).
  constexpr int kPorts = 16;
  const auto name = [](int d, int i) {
    return "d" + std::to_string(d) + "-bb" + std::to_string(i);
  };
  for (int d = 0; d < domains; ++d) {
    const std::string domain = "d" + std::to_string(d);
    for (int i = 0; i < nodes_per_domain; ++i) {
      model::BisBis bb = node(name(d, i), params, kPorts);
      bb.domain = domain;
      (void)g.add_bisbis(std::move(bb));
    }
  }
  std::vector<int> next_port(
      static_cast<std::size_t>(domains) * nodes_per_domain, 0);
  const auto slot = [&](int d, int i) {
    return static_cast<std::size_t>(d) * nodes_per_domain +
           static_cast<std::size_t>(i);
  };
  const auto add_edge = [&](int d_a, int a, int d_b, int b) {
    if (d_a == d_b && a == b) return;
    int& pa = next_port[slot(d_a, a)];
    int& pb = next_port[slot(d_b, b)];
    if (pa >= kPorts || pb >= kPorts) return;  // degree cap reached
    model::connect(g, name(d_a, a), pa++, name(d_b, b), pb++,
                   {params.link_bandwidth, params.link_delay});
  };
  const auto random_node = [&]() {
    return static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(nodes_per_domain)));
  };
  for (int d = 0; d < domains; ++d) {
    // Spanning tree with a bounded parent window, so no node collects an
    // unbounded number of children (the degree cap would disconnect it).
    for (int i = 1; i < nodes_per_domain; ++i) {
      const int window = std::min(i, 8);
      const int parent =
          i - 1 -
          static_cast<int>(rng.next_below(static_cast<std::uint64_t>(window)));
      add_edge(d, i, d, parent);
    }
    // Extra random edges up to the expected degree (tree edges count ~2).
    const auto extra = static_cast<std::size_t>(
        std::max(0.0, degree - 2.0) * nodes_per_domain / 2.0);
    for (std::size_t e = 0; e < extra; ++e) {
      add_edge(d, random_node(), d, random_node());
    }
  }
  // Domain ring: one gateway link per consecutive pair (none for a single
  // domain; no wrap link for two, which would just duplicate the first).
  if (domains > 1) {
    const int pairs = domains == 2 ? 1 : domains;
    for (int d = 0; d < pairs; ++d) {
      add_edge(d, 0, (d + 1) % domains, nodes_per_domain > 1 ? 1 : 0);
    }
  }
  for (int s = 0; s < n_saps; ++s) {
    const int d = s % domains;
    // Random attach node; linear-probe past port-exhausted nodes.
    int i = random_node();
    for (int tried = 0; tried < nodes_per_domain; ++tried) {
      if (next_port[slot(d, i)] < kPorts) break;
      i = (i + 1) % nodes_per_domain;
    }
    int& port = next_port[slot(d, i)];
    if (port >= kPorts) continue;  // domain saturated; drop this SAP
    model::attach_sap(g, "sap" + std::to_string(s + 1), name(d, i), port++,
                      {params.link_bandwidth, params.sap_link_delay});
  }
  return g;
}

}  // namespace unify::infra::topo
