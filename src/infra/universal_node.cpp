#include "infra/universal_node.h"

namespace unify::infra {

const char* to_string(ContainerStatus status) noexcept {
  switch (status) {
    case ContainerStatus::kStarting: return "starting";
    case ContainerStatus::kRunning:  return "running";
    case ContainerStatus::kStopped:  return "stopped";
  }
  return "unknown";
}

UniversalNode::UniversalNode(SimClock& clock, std::string name,
                             model::Resources capacity, UnConfig config)
    : clock_(&clock),
      name_(std::move(name)),
      capacity_(capacity),
      config_(config) {
  (void)fabric_.add_switch("lsi0", config_.lsi_ports);
  for (int i = 0; i < config_.external_ports; ++i) {
    (void)fabric_.attach("ext" + std::to_string(i), "lsi0", next_lsi_port_++);
  }
}

model::Resources UniversalNode::allocated() const noexcept {
  model::Resources total;
  for (const auto& [id, c] : containers_) {
    if (c.status != ContainerStatus::kStopped) total += c.limits;
  }
  return total;
}

Result<void> UniversalNode::start_container(const std::string& id,
                                            const std::string& image,
                                            model::Resources limits,
                                            int port_count) {
  clock_->advance(config_.container_start_us);
  ++ops_;
  const auto it = containers_.find(id);
  if (it != containers_.end() && it->second.status != ContainerStatus::kStopped) {
    return Error{ErrorCode::kAlreadyExists, "container " + id};
  }
  if (port_count <= 0) {
    return Error{ErrorCode::kInvalidArgument,
                 "container needs at least one port"};
  }
  const model::Resources residual = capacity_ - allocated();
  if (!residual.fits(limits)) {
    return Error{ErrorCode::kResourceExhausted,
                 "UN " + name_ + " residual " + residual.to_string() +
                     " < limits " + limits.to_string()};
  }
  Container c;
  c.id = id;
  c.image = image;
  c.limits = limits;
  for (int p = 0; p < port_count; ++p) {
    int port;
    if (!free_lsi_ports_.empty()) {
      port = free_lsi_ports_.back();
      free_lsi_ports_.pop_back();
    } else if (next_lsi_port_ < config_.lsi_ports) {
      port = next_lsi_port_++;
    } else {
      return Error{ErrorCode::kResourceExhausted, "LSI ports exhausted"};
    }
    UNIFY_RETURN_IF_ERROR(
        fabric_.attach(id + ":" + std::to_string(p), "lsi0", port));
    c.lsi_ports.push_back(port);
  }
  containers_[id] = std::move(c);
  // Container start latency is charged synchronously above (docker run
  // blocks); mark running immediately after.
  containers_[id].status = ContainerStatus::kRunning;
  return Result<void>::success();
}

Result<void> UniversalNode::stop_container(const std::string& id) {
  clock_->advance(config_.container_stop_us);
  ++ops_;
  const auto it = containers_.find(id);
  if (it == containers_.end() || it->second.status == ContainerStatus::kStopped) {
    return Error{ErrorCode::kNotFound, "container " + id};
  }
  it->second.status = ContainerStatus::kStopped;
  // Unpatch the veth ports so the LSI slots can be reused.
  for (std::size_t p = 0; p < it->second.lsi_ports.size(); ++p) {
    (void)fabric_.detach(id + ":" + std::to_string(p));
    free_lsi_ports_.push_back(it->second.lsi_ports[p]);
  }
  it->second.lsi_ports.clear();
  return Result<void>::success();
}

const Container* UniversalNode::find_container(
    const std::string& id) const noexcept {
  const auto it = containers_.find(id);
  return it == containers_.end() ? nullptr : &it->second;
}

Result<void> UniversalNode::add_flowrule(const std::string& rule_id,
                                         const std::string& from_endpoint,
                                         const std::string& match_tag,
                                         const std::string& to_endpoint,
                                         const std::string& set_tag) {
  clock_->advance(config_.lsi_flow_mod_us);
  ++ops_;
  const auto from = fabric_.attachment(from_endpoint);
  const auto to = fabric_.attachment(to_endpoint);
  if (!from.has_value() || !to.has_value()) {
    return Error{ErrorCode::kNotFound,
                 "LSI endpoint " +
                     (from.has_value() ? to_endpoint : from_endpoint)};
  }
  FlowEntry entry;
  entry.id = rule_id;
  entry.in_port = from->second;
  entry.match_tag = match_tag;
  entry.out_port = to->second;
  entry.set_tag = set_tag;
  return fabric_.find_switch("lsi0")->install(std::move(entry));
}

Result<void> UniversalNode::remove_flowrule(const std::string& rule_id) {
  clock_->advance(config_.lsi_flow_mod_us);
  ++ops_;
  return fabric_.find_switch("lsi0")->remove(rule_id);
}

}  // namespace unify::infra
