#include "infra/churn.h"

#include <algorithm>
#include <cmath>

namespace unify::infra::churn {

const char* to_string(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kArrival:          return "arrival";
    case EventKind::kDeparture:        return "departure";
    case EventKind::kMigrate:          return "migrate";
    case EventKind::kMaintenanceBegin: return "maintenance_begin";
    case EventKind::kMaintenanceEnd:   return "maintenance_end";
  }
  return "unknown";
}

void add_rolling_maintenance(ScenarioSpec& spec, SimTime first_at,
                             SimTime window_us, SimTime stagger_us) {
  for (int d = 0; d < spec.n_domains; ++d) {
    spec.maintenance.push_back(ScenarioSpec::Maintenance{
        first_at + static_cast<SimTime>(d) * stagger_us, window_us, d});
  }
}

ChurnEngine::ChurnEngine(ScenarioSpec spec, std::uint64_t seed)
    : spec_(std::move(spec)), rng_(seed) {
  for (const ScenarioSpec::Maintenance& window : spec_.maintenance) {
    Event begin;
    begin.at = window.at;
    begin.kind = EventKind::kMaintenanceBegin;
    begin.domain = window.domain;
    push(window.at, begin);
    Event end;
    end.at = window.at + window.duration_us;
    end.kind = EventKind::kMaintenanceEnd;
    end.domain = window.domain;
    push(end.at, end);
  }
  // Storms are NOT pushed here: their fan-out depends on the live
  // population at storm time, so they expand lazily in next().
  std::sort(spec_.storms.begin(), spec_.storms.end(),
            [](const ScenarioSpec::MigrationStorm& a,
               const ScenarioSpec::MigrationStorm& b) { return a.at < b.at; });
  schedule_next_arrival();
}

double ChurnEngine::rate_at(SimTime t) const noexcept {
  double rate = spec_.arrival_rate_hz;
  for (const ScenarioSpec::FlashCrowd& crowd : spec_.flash_crowds) {
    if (t >= crowd.at && t < crowd.at + crowd.duration_us) {
      rate *= crowd.multiplier;
    }
  }
  return rate;
}

double ChurnEngine::peak_rate() const noexcept {
  // Majorant for the thinning step: the product of every boost is an upper
  // bound on rate_at() even when flash-crowd windows overlap.
  double peak = spec_.arrival_rate_hz;
  for (const ScenarioSpec::FlashCrowd& crowd : spec_.flash_crowds) {
    if (crowd.multiplier > 1) peak *= crowd.multiplier;
  }
  return peak;
}

void ChurnEngine::push(SimTime at, Event event) {
  queue_.push(Pending{at, seq_++, std::move(event)});
}

ChainSpec ChurnEngine::random_chain() {
  ChainSpec chain;
  chain.src_sap = static_cast<int>(rng_.next_below(
      static_cast<std::uint64_t>(spec_.n_saps)));
  // A distinct destination without rejection sampling (determinism is
  // easier to reason about when every draw consumes exactly one value).
  chain.dst_sap = static_cast<int>(
      (static_cast<std::uint64_t>(chain.src_sap) + 1 +
       rng_.next_below(static_cast<std::uint64_t>(spec_.n_saps - 1))) %
      static_cast<std::uint64_t>(spec_.n_saps));
  const int length = static_cast<int>(
      rng_.next_int(spec_.chain_min, spec_.chain_max));
  chain.nf_types.reserve(static_cast<std::size_t>(length));
  for (int i = 0; i < length; ++i) {
    chain.nf_types.push_back(static_cast<int>(
        rng_.next_below(static_cast<std::uint64_t>(spec_.nf_pool))));
  }
  chain.bandwidth = rng_.next_double(spec_.bandwidth_min, spec_.bandwidth_max);
  chain.max_delay_ms = spec_.max_delay_ms;
  return chain;
}

SimTime ChurnEngine::random_lifetime_us() {
  // Bounded Pareto by inversion: heavy tail (most services are short, a
  // few run two orders of magnitude longer), finite worst case so the
  // live population stays bounded.
  const double lo = spec_.lifetime_min_s;
  const double hi = spec_.lifetime_cap_s;
  const double alpha = spec_.lifetime_alpha;
  const double u = rng_.next_double();
  const double ratio = std::pow(lo / hi, alpha);
  const double x = lo / std::pow(1.0 - u * (1.0 - ratio), 1.0 / alpha);
  return static_cast<SimTime>(std::llround(x * 1e6));
}

void ChurnEngine::schedule_next_arrival() {
  if (spec_.arrival_rate_hz <= 0) return;
  const double peak = peak_rate();
  SimTime t = arrival_cursor_;
  // Lewis thinning: candidates at the peak rate, accepted with probability
  // rate(t)/peak — an exact non-homogeneous Poisson process, deterministic
  // because every candidate consumes exactly two draws.
  while (t <= spec_.horizon_us) {
    const double gap_s = -std::log(1.0 - rng_.next_double()) / peak;
    t += std::max<SimTime>(1, static_cast<SimTime>(std::llround(gap_s * 1e6)));
    if (t > spec_.horizon_us) break;
    if (rng_.next_double() * peak <= rate_at(t)) {
      arrival_cursor_ = t;
      Event arrival;
      arrival.at = t;
      arrival.kind = EventKind::kArrival;
      arrival.service_id = "c" + std::to_string(next_service_++);
      arrival.chain = random_chain();
      arrival.deadline =
          t + static_cast<SimTime>(std::llround(
                  rng_.next_double(spec_.deadline_min_s, spec_.deadline_max_s) *
                  1e6));
      push(t, std::move(arrival));
      return;
    }
  }
  arrival_cursor_ = spec_.horizon_us + 1;
}

void ChurnEngine::expand_storm(const ScenarioSpec::MigrationStorm& storm) {
  const std::size_t count = static_cast<std::size_t>(
      static_cast<double>(live_ids_.size()) * storm.fraction);
  // Sample without replacement from the live population, deterministically.
  std::vector<std::size_t> candidates(live_ids_.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) candidates[i] = i;
  for (std::size_t k = 0; k < count; ++k) {
    const std::size_t pick = static_cast<std::size_t>(
        rng_.next_below(candidates.size()));
    const std::size_t index = candidates[pick];
    candidates[pick] = candidates.back();
    candidates.pop_back();
    Event migrate;
    migrate.at = storm.at;
    migrate.kind = EventKind::kMigrate;
    migrate.service_id = live_ids_[index];
    migrate.chain = live_chains_[index];
    migrate.deadline =
        storm.at + static_cast<SimTime>(std::llround(
                       rng_.next_double(spec_.deadline_min_s,
                                        spec_.deadline_max_s) *
                       1e6));
    push(storm.at, std::move(migrate));
  }
}

std::optional<Event> ChurnEngine::next() {
  for (;;) {
    // A storm due before (or at) the next event expands first: everything
    // that shapes the live population up to storm.at has already been
    // emitted, and the pushed kMigrate events sort ahead of the current
    // queue top (their timestamp is earlier).
    while (next_storm_ < spec_.storms.size() &&
           (queue_.empty() ||
            queue_.top().at >= spec_.storms[next_storm_].at)) {
      expand_storm(spec_.storms[next_storm_]);
      ++next_storm_;
    }
    if (queue_.empty()) return std::nullopt;
    if (queue_.top().at > spec_.horizon_us) return std::nullopt;
    Pending top = queue_.top();
    queue_.pop();
    switch (top.event.kind) {
      case EventKind::kArrival: {
        ++arrivals_;
        live_ids_.push_back(top.event.service_id);
        live_chains_.push_back(top.event.chain);
        Event departure;
        departure.kind = EventKind::kDeparture;
        departure.service_id = top.event.service_id;
        departure.at = top.at + random_lifetime_us();
        push(departure.at, std::move(departure));
        schedule_next_arrival();
        break;
      }
      case EventKind::kDeparture: {
        for (std::size_t i = 0; i < live_ids_.size(); ++i) {
          if (live_ids_[i] == top.event.service_id) {
            live_ids_[i] = std::move(live_ids_.back());
            live_ids_.pop_back();
            live_chains_[i] = std::move(live_chains_.back());
            live_chains_.pop_back();
            break;
          }
        }
        break;
      }
      default:
        break;
    }
    return top.event;
  }
}

}  // namespace unify::infra::churn
