// Deterministic trace-driven churn scenario engine (DESIGN.md §12.2).
//
// Generates the workload side of a production soak: Poisson service
// arrivals (with non-homogeneous flash-crowd windows), heavy-tailed
// (bounded-Pareto) service lifetimes, migration storms that re-embed a
// fraction of the live population, and rolling per-domain maintenance
// windows — all as one merged, timestamp-ordered event stream over
// simulated time, so hours of churn compress into seconds of wall clock.
//
// The engine is substrate-agnostic: events reference SAP/domain indices
// and abstract chain shapes; the driver (service::run_churn, bench_churn)
// materializes them against a concrete stack. Everything is derived from
// one seeded Rng pulled in a fixed order, so a (spec, seed) pair yields a
// bit-identical event stream on every run and platform — the replay
// contract the churn tests and CHURN_SEED overrides rely on.
#pragma once

#include <cstdint>
#include <optional>
#include <queue>
#include <string>
#include <vector>

#include "util/rng.h"
#include "util/sim_clock.h"

namespace unify::infra::churn {

/// Abstract service shape; the driver turns it into an sg::make_chain.
struct ChainSpec {
  int src_sap = 0;  ///< SAP index in [0, spec.n_saps)
  int dst_sap = 1;
  std::vector<int> nf_types;  ///< indices into the driver's NF type pool
  double bandwidth = 5;
  double max_delay_ms = 500;
};

enum class EventKind {
  kArrival,           ///< new service request (chain, deadline, priority 0)
  kDeparture,         ///< the service's lifetime ended
  kMigrate,           ///< re-embed a live service (priority: heal class)
  kMaintenanceBegin,  ///< domain goes down for maintenance
  kMaintenanceEnd,    ///< domain comes back
};
[[nodiscard]] const char* to_string(EventKind kind) noexcept;

struct Event {
  SimTime at = 0;
  EventKind kind = EventKind::kArrival;
  std::string service_id;  ///< arrival / departure / migrate
  ChainSpec chain;         ///< arrival / migrate
  int domain = -1;         ///< maintenance events
  SimTime deadline = 0;    ///< absolute admission deadline (arrivals)
};

struct ScenarioSpec {
  SimTime horizon_us = 600'000'000;  ///< 10 sim-minutes of churn
  // -- arrival process ----------------------------------------------------
  double arrival_rate_hz = 20;  ///< base Poisson rate
  struct FlashCrowd {
    SimTime at = 0;
    SimTime duration_us = 0;
    double multiplier = 1;  ///< arrival rate scales by this inside the window
  };
  std::vector<FlashCrowd> flash_crowds;
  // -- lifetimes: bounded Pareto (heavy tail, finite worst case) ----------
  double lifetime_min_s = 0.5;
  double lifetime_alpha = 1.4;
  double lifetime_cap_s = 120;
  // -- admission deadlines, uniform after arrival -------------------------
  double deadline_min_s = 1.0;
  double deadline_max_s = 5.0;
  // -- chain shape --------------------------------------------------------
  int nf_pool = 3;  ///< nf_types drawn from [0, nf_pool)
  int chain_min = 1;
  int chain_max = 2;
  double bandwidth_min = 1;
  double bandwidth_max = 10;
  double max_delay_ms = 500;
  // -- substrate interface ------------------------------------------------
  int n_saps = 3;
  int n_domains = 3;
  // -- disruption schedules -----------------------------------------------
  struct Maintenance {
    SimTime at = 0;
    SimTime duration_us = 0;
    int domain = 0;
  };
  std::vector<Maintenance> maintenance;
  struct MigrationStorm {
    SimTime at = 0;
    double fraction = 0.25;  ///< of the live population to re-embed
  };
  std::vector<MigrationStorm> storms;
};

/// Appends one maintenance window per domain, `stagger_us` apart (rolling
/// maintenance: at any instant at most one domain is down when
/// stagger >= window).
void add_rolling_maintenance(ScenarioSpec& spec, SimTime first_at,
                             SimTime window_us, SimTime stagger_us);

class ChurnEngine {
 public:
  ChurnEngine(ScenarioSpec spec, std::uint64_t seed);

  /// The next event in timestamp order (ties broken by generation order),
  /// or nullopt past the horizon. Timestamps never decrease.
  std::optional<Event> next();

  [[nodiscard]] const ScenarioSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] std::size_t arrivals_generated() const noexcept {
    return arrivals_;
  }
  /// Services arrived but not yet departed, from the generator's point of
  /// view (admission outcomes are the driver's business).
  [[nodiscard]] std::size_t live() const noexcept { return live_ids_.size(); }

 private:
  struct Pending {
    SimTime at;
    std::uint64_t seq;
    Event event;
  };
  struct Later {
    bool operator()(const Pending& a, const Pending& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  [[nodiscard]] double rate_at(SimTime t) const noexcept;
  [[nodiscard]] double peak_rate() const noexcept;
  void push(SimTime at, Event event);
  void schedule_next_arrival();
  [[nodiscard]] ChainSpec random_chain();
  [[nodiscard]] SimTime random_lifetime_us();
  void expand_storm(const ScenarioSpec::MigrationStorm& storm);

  ScenarioSpec spec_;
  Rng rng_;
  std::priority_queue<Pending, std::vector<Pending>, Later> queue_;
  std::vector<std::string> live_ids_;  ///< swap-erased; order is seeded
  std::vector<ChainSpec> live_chains_;  ///< parallel to live_ids_
  SimTime arrival_cursor_ = 0;  ///< time of the last scheduled arrival
  std::size_t next_storm_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t next_service_ = 0;
  std::size_t arrivals_ = 0;
};

}  // namespace unify::infra::churn
