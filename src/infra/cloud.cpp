#include "infra/cloud.h"

#include <algorithm>

namespace unify::infra {

const char* to_string(VmStatus status) noexcept {
  switch (status) {
    case VmStatus::kBuild:   return "BUILD";
    case VmStatus::kActive:  return "ACTIVE";
    case VmStatus::kDeleted: return "DELETED";
    case VmStatus::kError:   return "ERROR";
  }
  return "UNKNOWN";
}

Cloud::Cloud(SimClock& clock, std::string name, CloudConfig config)
    : clock_(&clock), name_(std::move(name)), config_(config) {
  (void)fabric_.add_switch("gw", config_.gateway_ports);
  for (int i = 0; i < config_.external_ports; ++i) {
    (void)fabric_.attach("ext" + std::to_string(i), "gw", next_gw_port_++);
  }
}

Result<void> Cloud::add_hypervisor(const std::string& id,
                                   model::Resources capacity) {
  if (hypervisors_.count(id) != 0) {
    return Error{ErrorCode::kAlreadyExists, "hypervisor " + id};
  }
  hypervisors_.emplace(id, Hypervisor{id, capacity, {}});
  return Result<void>::success();
}

Result<std::string> Cloud::schedule(const model::Resources& flavor) {
  // nova-style: filter on capacity, weigh by least worst-dimension load.
  const Hypervisor* best = nullptr;
  double best_load = 2.0;
  for (const auto& [id, hv] : hypervisors_) {
    const model::Resources residual = hv.capacity - hv.allocated;
    if (!residual.fits(flavor)) continue;
    double load = 0;
    if (hv.capacity.cpu > 0) {
      load = std::max(load, hv.allocated.cpu / hv.capacity.cpu);
    }
    if (hv.capacity.mem > 0) {
      load = std::max(load, hv.allocated.mem / hv.capacity.mem);
    }
    if (best == nullptr || load < best_load) {
      best = &hv;
      best_load = load;
    }
  }
  if (best == nullptr) {
    return Error{ErrorCode::kResourceExhausted,
                 "no hypervisor fits flavor " + flavor.to_string()};
  }
  return best->id;
}

Result<void> Cloud::boot_vm(const std::string& id, const std::string& image,
                            model::Resources flavor, int nic_count) {
  clock_->advance(config_.api_latency_us);
  ++api_calls_;
  if (vms_.count(id) != 0 && vms_.at(id).status != VmStatus::kDeleted) {
    return Error{ErrorCode::kAlreadyExists, "VM " + id};
  }
  if (nic_count <= 0) {
    return Error{ErrorCode::kInvalidArgument, "VM needs at least one NIC"};
  }
  UNIFY_ASSIGN_OR_RETURN(const std::string host, schedule(flavor));

  Vm vm;
  vm.id = id;
  vm.image = image;
  vm.flavor = flavor;
  vm.host = host;
  vm.status = VmStatus::kBuild;
  for (int nic = 0; nic < nic_count; ++nic) {
    int port;
    if (!free_gw_ports_.empty()) {
      port = free_gw_ports_.back();
      free_gw_ports_.pop_back();
    } else if (next_gw_port_ < config_.gateway_ports) {
      port = next_gw_port_++;
    } else {
      return Error{ErrorCode::kResourceExhausted, "gateway ports exhausted"};
    }
    UNIFY_RETURN_IF_ERROR(
        fabric_.attach(id + ":" + std::to_string(nic), "gw", port));
    vm.nic_gw_ports.push_back(port);
  }
  hypervisors_.at(host).allocated += flavor;
  vms_[id] = std::move(vm);
  clock_->schedule_in(config_.vm_boot_us, [this, id] {
    const auto it = vms_.find(id);
    if (it != vms_.end() && it->second.status == VmStatus::kBuild) {
      it->second.status = VmStatus::kActive;
    }
  });
  return Result<void>::success();
}

Result<void> Cloud::delete_vm(const std::string& id) {
  clock_->advance(config_.api_latency_us);
  ++api_calls_;
  const auto it = vms_.find(id);
  if (it == vms_.end() || it->second.status == VmStatus::kDeleted) {
    return Error{ErrorCode::kNotFound, "VM " + id};
  }
  hypervisors_.at(it->second.host).allocated -= it->second.flavor;
  it->second.status = VmStatus::kDeleted;
  // Unplug the NICs so the gateway ports can be reused.
  for (std::size_t nic = 0; nic < it->second.nic_gw_ports.size(); ++nic) {
    (void)fabric_.detach(id + ":" + std::to_string(nic));
    free_gw_ports_.push_back(it->second.nic_gw_ports[nic]);
  }
  it->second.nic_gw_ports.clear();
  return Result<void>::success();
}

const Vm* Cloud::find_vm(const std::string& id) const noexcept {
  const auto it = vms_.find(id);
  return it == vms_.end() ? nullptr : &it->second;
}

Result<void> Cloud::install_steering(const std::string& rule_id,
                                     const std::string& from_endpoint,
                                     const std::string& match_tag,
                                     const std::string& to_endpoint,
                                     const std::string& set_tag) {
  clock_->advance(config_.flow_install_us);
  ++api_calls_;
  const auto from = fabric_.attachment(from_endpoint);
  const auto to = fabric_.attachment(to_endpoint);
  if (!from.has_value() || !to.has_value()) {
    return Error{ErrorCode::kNotFound,
                 "gateway endpoint " +
                     (from.has_value() ? to_endpoint : from_endpoint)};
  }
  FlowEntry entry;
  entry.id = rule_id;
  entry.in_port = from->second;
  entry.match_tag = match_tag;
  entry.out_port = to->second;
  entry.set_tag = set_tag;
  return fabric_.find_switch("gw")->install(std::move(entry));
}

Result<void> Cloud::remove_steering(const std::string& rule_id) {
  clock_->advance(config_.flow_install_us);
  ++api_calls_;
  return fabric_.find_switch("gw")->remove(rule_id);
}

model::Resources Cloud::total_capacity() const noexcept {
  model::Resources total;
  for (const auto& [id, hv] : hypervisors_) total += hv.capacity;
  return total;
}

model::Resources Cloud::total_allocated() const noexcept {
  model::Resources total;
  for (const auto& [id, hv] : hypervisors_) total += hv.allocated;
  return total;
}

}  // namespace unify::infra
