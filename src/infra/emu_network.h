// Emulated network domain: the reproduction of the paper's Mininet-based
// domain where NFs run as isolated Click processes on emulated hosts and
// the topology is programmed via NETCONF + OpenFlow.
//
// Each switch carries an attached execution environment (EE) — an emulated
// host with CPU/mem where Click processes run — so NFs can be spawned next
// to any switch. Flow programming reuses the shared Fabric.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "infra/fabric.h"
#include "model/resources.h"
#include "util/result.h"
#include "util/sim_clock.h"

namespace unify::infra {

struct EmuConfig {
  SimTime flow_mod_latency_us = 700;      ///< OpenFlow via emulated channel
  SimTime click_start_us = 120'000;       ///< forking a Click process
  SimTime click_stop_us = 20'000;
  int ee_ports_per_switch = 16;           ///< switch ports reserved for NFs
};

struct ClickProcess {
  std::string id;
  std::string type;  ///< NF type (maps to a Click configuration)
  std::string host;  ///< EE (switch) it runs beside
  model::Resources usage;
  bool running = false;
  std::vector<int> switch_ports;
};

struct ExecutionEnvironment {
  std::string switch_id;
  model::Resources capacity;
  model::Resources allocated;
  int next_port = 0;  ///< next EE-reserved port on the switch
  std::vector<int> free_ports;  ///< released EE ports available for reuse
};

class EmuNetwork {
 public:
  EmuNetwork(SimClock& clock, std::string name, EmuConfig config = {});

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  /// The simulated time base every operation of this domain is charged
  /// against (shared machinery: concurrent control must serialize on it).
  [[nodiscard]] SimClock& clock() const noexcept { return *clock_; }

  /// Adds a switch with `fabric_ports` inter-switch/SAP ports plus the
  /// configured EE port block, and an EE with `ee_capacity` beside it.
  Result<void> add_switch(const std::string& id, int fabric_ports,
                          model::Resources ee_capacity);
  Result<void> connect(const std::string& a, int port_a, const std::string& b,
                       int port_b, model::LinkAttrs attrs);
  Result<void> attach_sap(const std::string& sap, const std::string& sw,
                          int port, model::LinkAttrs attrs);

  /// Spawns a Click process beside switch `host`; its ports are patched to
  /// EE-reserved switch ports. Synchronous (charges start latency).
  Result<void> start_click(const std::string& id, const std::string& type,
                           const std::string& host, model::Resources usage,
                           int port_count);
  Result<void> stop_click(const std::string& id);
  [[nodiscard]] const ClickProcess* find_click(
      const std::string& id) const noexcept;

  Result<void> install_flow(const std::string& sw, FlowEntry entry);
  Result<void> remove_flow(const std::string& sw, const std::string& entry_id);

  [[nodiscard]] const std::map<std::string, ExecutionEnvironment>& ees()
      const noexcept {
    return ees_;
  }
  [[nodiscard]] const std::map<std::string, ClickProcess>& clicks()
      const noexcept {
    return clicks_;
  }

  struct WireInfo {
    std::string a;
    int port_a;
    std::string b;
    int port_b;
    model::LinkAttrs attrs;
  };
  struct SapInfo {
    std::string sap;
    std::string sw;
    int port;
    model::LinkAttrs attrs;
  };
  [[nodiscard]] const std::vector<WireInfo>& wires() const noexcept {
    return wires_;
  }
  [[nodiscard]] const std::vector<SapInfo>& saps() const noexcept {
    return saps_;
  }
  [[nodiscard]] Fabric& fabric() noexcept { return fabric_; }
  [[nodiscard]] std::uint64_t operations() const noexcept { return ops_; }

  /// Public (non-EE) port count of a switch; -1 when unknown.
  [[nodiscard]] int public_ports(const std::string& sw) const noexcept {
    const auto it = fabric_ports_.find(sw);
    return it == fabric_ports_.end() ? -1 : it->second;
  }

 private:
  SimClock* clock_;
  std::string name_;
  EmuConfig config_;
  Fabric fabric_;
  std::map<std::string, ExecutionEnvironment> ees_;
  std::map<std::string, ClickProcess> clicks_;
  std::map<std::string, int> fabric_ports_;  ///< switch -> public port count
  std::vector<WireInfo> wires_;
  std::vector<SapInfo> saps_;
  std::uint64_t ops_ = 0;
};

}  // namespace unify::infra
