// Switching fabric shared by the domain simulators: OpenFlow-style match/
// action flow tables on interconnected switches, plus a data-plane packet
// tracer used to verify that an installed service chain actually steers
// traffic end to end.
//
// Matches are (in_port, optional tag); actions are (output port, optional
// tag rewrite). "Tag" abstracts whatever the technology uses for chain
// identification (VLAN, MPLS label, NSH path id).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/result.h"

namespace unify::infra {

/// A match/action entry. Empty match_tag matches untagged AND tagged
/// traffic (wildcard); set_tag "" = keep, "-" = strip.
struct FlowEntry {
  std::string id;
  int in_port = 0;
  std::string match_tag;
  int out_port = 0;
  std::string set_tag;
  int priority = 0;  ///< higher wins; ties broken by earlier install
};

struct SwitchStats {
  std::uint64_t flow_mods = 0;
  std::uint64_t packets_switched = 0;
};

class FlowSwitch {
 public:
  explicit FlowSwitch(std::string id, int port_count);

  [[nodiscard]] const std::string& id() const noexcept { return id_; }
  [[nodiscard]] int port_count() const noexcept { return port_count_; }

  Result<void> install(FlowEntry entry);
  Result<void> remove(const std::string& entry_id);
  void clear() { entries_.clear(); }

  /// Highest-priority entry matching (in_port, tag), or nullptr.
  [[nodiscard]] const FlowEntry* lookup(int in_port,
                                        const std::string& tag) const;

  [[nodiscard]] const std::vector<FlowEntry>& entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] SwitchStats& stats() noexcept { return stats_; }

 private:
  std::string id_;
  int port_count_;
  std::vector<FlowEntry> entries_;
  SwitchStats stats_;
};

/// A set of switches wired port-to-port, with named attachment points
/// (SAPs, NF ports, gateways) hanging off switch ports.
class Fabric {
 public:
  Result<void> add_switch(const std::string& id, int port_count);
  [[nodiscard]] FlowSwitch* find_switch(const std::string& id) noexcept;
  [[nodiscard]] const FlowSwitch* find_switch(
      const std::string& id) const noexcept;

  /// Wires (a,port_a) <-> (b,port_b); both directions.
  Result<void> connect(const std::string& a, int port_a, const std::string& b,
                       int port_b);

  /// Attaches an external endpoint (SAP, NF, gateway) to a switch port.
  Result<void> attach(const std::string& endpoint, const std::string& sw,
                      int port);
  /// Removes an attachment, freeing its port for reuse.
  Result<void> detach(const std::string& endpoint);
  [[nodiscard]] std::optional<std::pair<std::string, int>> attachment(
      const std::string& endpoint) const;

  [[nodiscard]] const std::map<std::string, FlowSwitch>& switches()
      const noexcept {
    return switches_;
  }

  /// One hop of a packet trace.
  struct TraceHop {
    std::string switch_id;
    int in_port = 0;
    int out_port = 0;
    std::string tag_after;
  };
  struct TraceResult {
    std::vector<TraceHop> hops;
    std::string egress_endpoint;  ///< attachment reached, "" if dropped
    bool dropped = false;
    std::string drop_reason;
  };

  /// Injects a packet at attachment `from` carrying `tag` and follows flow
  /// entries until it leaves at another attachment, is dropped (no match /
  /// unconnected port), or exceeds `max_hops` (loop guard).
  [[nodiscard]] TraceResult trace(const std::string& from,
                                  const std::string& tag = "",
                                  std::size_t max_hops = 64);

 private:
  struct PortKey {
    std::string sw;
    int port;
    friend bool operator<(const PortKey& a, const PortKey& b) noexcept {
      if (a.sw != b.sw) return a.sw < b.sw;
      return a.port < b.port;
    }
  };

  std::map<std::string, FlowSwitch> switches_;
  std::map<PortKey, PortKey> wires_;                    // port <-> port
  std::map<PortKey, std::string> port_attachment_;     // port -> endpoint
  std::map<std::string, PortKey> attachments_;         // endpoint -> port
};

}  // namespace unify::infra
