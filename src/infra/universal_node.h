// Universal Node (UN): the paper's novel infrastructure element — a COTS
// packet processor combining (i) high-performance forwarding via
// DPDK-accelerated logical switch instances (LSIs) and (ii) an NF execution
// environment running NFs as Docker-style containers.
//
// The UN local orchestrator of the paper maps to this class's public API:
// LSI flowrule programming plus container lifecycle. Container starts are
// fast (hundreds of ms, vs seconds for cloud VMs); LSI flow-mods are
// sub-millisecond — the asymmetry the benchmarks surface in E2.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "infra/fabric.h"
#include "model/resources.h"
#include "util/result.h"
#include "util/sim_clock.h"

namespace unify::infra {

struct UnConfig {
  SimTime lsi_flow_mod_us = 50;          ///< DPDK datapath reprogram
  SimTime container_start_us = 250'000;  ///< docker run latency
  SimTime container_stop_us = 50'000;
  int lsi_ports = 128;
  int external_ports = 4;
};

enum class ContainerStatus { kStarting, kRunning, kStopped };
[[nodiscard]] const char* to_string(ContainerStatus status) noexcept;

struct Container {
  std::string id;
  std::string image;  ///< NF type
  model::Resources limits;
  ContainerStatus status = ContainerStatus::kStarting;
  std::vector<int> lsi_ports;
};

class UniversalNode {
 public:
  UniversalNode(SimClock& clock, std::string name, model::Resources capacity,
                UnConfig config = {});

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  /// The simulated time base every operation of this domain is charged
  /// against (shared machinery: concurrent control must serialize on it).
  [[nodiscard]] SimClock& clock() const noexcept { return *clock_; }
  [[nodiscard]] model::Resources capacity() const noexcept {
    return capacity_;
  }
  [[nodiscard]] model::Resources allocated() const noexcept;

  /// Starts a container with `port_count` veth ports patched into the LSI.
  /// Returns with status kStarting; flips to kRunning after the start
  /// latency.
  Result<void> start_container(const std::string& id, const std::string& image,
                               model::Resources limits, int port_count);
  Result<void> stop_container(const std::string& id);
  [[nodiscard]] const Container* find_container(
      const std::string& id) const noexcept;
  [[nodiscard]] const std::map<std::string, Container>& containers()
      const noexcept {
    return containers_;
  }

  /// LSI flowrule between endpoints: "ext<k>" or "<container>:<port>".
  Result<void> add_flowrule(const std::string& rule_id,
                            const std::string& from_endpoint,
                            const std::string& match_tag,
                            const std::string& to_endpoint,
                            const std::string& set_tag);
  Result<void> remove_flowrule(const std::string& rule_id);

  [[nodiscard]] Fabric& fabric() noexcept { return fabric_; }
  [[nodiscard]] std::uint64_t operations() const noexcept { return ops_; }

 private:
  SimClock* clock_;
  std::string name_;
  model::Resources capacity_;
  UnConfig config_;
  Fabric fabric_;
  std::map<std::string, Container> containers_;
  int next_lsi_port_ = 0;
  std::vector<int> free_lsi_ports_;
  std::uint64_t ops_ = 0;
};

}  // namespace unify::infra
