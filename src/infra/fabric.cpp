#include "infra/fabric.h"

#include <algorithm>

namespace unify::infra {

FlowSwitch::FlowSwitch(std::string id, int port_count)
    : id_(std::move(id)), port_count_(port_count) {}

Result<void> FlowSwitch::install(FlowEntry entry) {
  if (entry.id.empty()) {
    return Error{ErrorCode::kInvalidArgument, "flow entry id empty"};
  }
  const auto dup = std::any_of(
      entries_.begin(), entries_.end(),
      [&](const FlowEntry& e) { return e.id == entry.id; });
  if (dup) {
    return Error{ErrorCode::kAlreadyExists,
                 "flow entry " + entry.id + " on " + id_};
  }
  for (const int port : {entry.in_port, entry.out_port}) {
    if (port < 0 || port >= port_count_) {
      return Error{ErrorCode::kInvalidArgument,
                   "port " + std::to_string(port) + " out of range on " +
                       id_};
    }
  }
  entries_.push_back(std::move(entry));
  ++stats_.flow_mods;
  return Result<void>::success();
}

Result<void> FlowSwitch::remove(const std::string& entry_id) {
  const auto it =
      std::find_if(entries_.begin(), entries_.end(),
                   [&](const FlowEntry& e) { return e.id == entry_id; });
  if (it == entries_.end()) {
    return Error{ErrorCode::kNotFound, "flow entry " + entry_id};
  }
  entries_.erase(it);
  ++stats_.flow_mods;
  return Result<void>::success();
}

const FlowEntry* FlowSwitch::lookup(int in_port,
                                    const std::string& tag) const {
  const FlowEntry* best = nullptr;
  for (const FlowEntry& e : entries_) {
    if (e.in_port != in_port) continue;
    if (!e.match_tag.empty() && e.match_tag != tag) continue;
    if (best == nullptr || e.priority > best->priority) best = &e;
  }
  return best;
}

Result<void> Fabric::add_switch(const std::string& id, int port_count) {
  if (switches_.count(id) != 0) {
    return Error{ErrorCode::kAlreadyExists, "switch " + id};
  }
  if (port_count <= 0) {
    return Error{ErrorCode::kInvalidArgument, "switch needs ports"};
  }
  switches_.emplace(id, FlowSwitch{id, port_count});
  return Result<void>::success();
}

FlowSwitch* Fabric::find_switch(const std::string& id) noexcept {
  const auto it = switches_.find(id);
  return it == switches_.end() ? nullptr : &it->second;
}

const FlowSwitch* Fabric::find_switch(const std::string& id) const noexcept {
  const auto it = switches_.find(id);
  return it == switches_.end() ? nullptr : &it->second;
}

namespace {
Result<void> check_port(const FlowSwitch* sw, const std::string& id,
                        int port) {
  if (sw == nullptr) {
    return Error{ErrorCode::kNotFound, "switch " + id};
  }
  if (port < 0 || port >= sw->port_count()) {
    return Error{ErrorCode::kInvalidArgument,
                 "port " + std::to_string(port) + " out of range on " + id};
  }
  return Result<void>::success();
}
}  // namespace

Result<void> Fabric::connect(const std::string& a, int port_a,
                             const std::string& b, int port_b) {
  UNIFY_RETURN_IF_ERROR(check_port(find_switch(a), a, port_a));
  UNIFY_RETURN_IF_ERROR(check_port(find_switch(b), b, port_b));
  const PortKey ka{a, port_a};
  const PortKey kb{b, port_b};
  if (wires_.count(ka) != 0 || wires_.count(kb) != 0 ||
      port_attachment_.count(ka) != 0 || port_attachment_.count(kb) != 0) {
    return Error{ErrorCode::kAlreadyExists, "port already wired"};
  }
  wires_.emplace(ka, kb);
  wires_.emplace(kb, ka);
  return Result<void>::success();
}

Result<void> Fabric::attach(const std::string& endpoint, const std::string& sw,
                            int port) {
  UNIFY_RETURN_IF_ERROR(check_port(find_switch(sw), sw, port));
  if (attachments_.count(endpoint) != 0) {
    return Error{ErrorCode::kAlreadyExists, "endpoint " + endpoint};
  }
  const PortKey key{sw, port};
  if (wires_.count(key) != 0 || port_attachment_.count(key) != 0) {
    return Error{ErrorCode::kAlreadyExists, "port already wired"};
  }
  port_attachment_.emplace(key, endpoint);
  attachments_.emplace(endpoint, key);
  return Result<void>::success();
}

Result<void> Fabric::detach(const std::string& endpoint) {
  const auto it = attachments_.find(endpoint);
  if (it == attachments_.end()) {
    return Error{ErrorCode::kNotFound, "endpoint " + endpoint};
  }
  port_attachment_.erase(it->second);
  attachments_.erase(it);
  return Result<void>::success();
}

std::optional<std::pair<std::string, int>> Fabric::attachment(
    const std::string& endpoint) const {
  const auto it = attachments_.find(endpoint);
  if (it == attachments_.end()) return std::nullopt;
  return std::make_pair(it->second.sw, it->second.port);
}

Fabric::TraceResult Fabric::trace(const std::string& from,
                                  const std::string& tag,
                                  std::size_t max_hops) {
  TraceResult result;
  const auto start = attachments_.find(from);
  if (start == attachments_.end()) {
    result.dropped = true;
    result.drop_reason = "unknown attachment " + from;
    return result;
  }
  std::string current_tag = tag;
  PortKey at = start->second;  // packet enters this switch port
  for (std::size_t hop = 0; hop < max_hops; ++hop) {
    FlowSwitch* sw = find_switch(at.sw);
    const FlowEntry* entry = sw->lookup(at.port, current_tag);
    if (entry == nullptr) {
      result.dropped = true;
      result.drop_reason = "no match on " + at.sw + " port " +
                           std::to_string(at.port) + " tag '" + current_tag +
                           "'";
      return result;
    }
    ++sw->stats().packets_switched;
    if (entry->set_tag == "-") {
      current_tag.clear();
    } else if (!entry->set_tag.empty()) {
      current_tag = entry->set_tag;
    }
    result.hops.push_back(
        TraceHop{at.sw, at.port, entry->out_port, current_tag});
    const PortKey out{at.sw, entry->out_port};
    // Leaves at an attachment?
    const auto attached = port_attachment_.find(out);
    if (attached != port_attachment_.end()) {
      result.egress_endpoint = attached->second;
      return result;
    }
    // Crosses a wire to the next switch?
    const auto wire = wires_.find(out);
    if (wire == wires_.end()) {
      result.dropped = true;
      result.drop_reason =
          "output port " + at.sw + ":" + std::to_string(entry->out_port) +
          " is unconnected";
      return result;
    }
    at = wire->second;
  }
  result.dropped = true;
  result.drop_reason = "hop limit exceeded (loop?)";
  return result;
}

}  // namespace unify::infra
