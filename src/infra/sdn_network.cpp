#include "infra/sdn_network.h"

namespace unify::infra {

SdnNetwork::SdnNetwork(SimClock& clock, std::string name, SdnConfig config)
    : clock_(&clock), name_(std::move(name)), config_(config) {}

Result<void> SdnNetwork::add_switch(const std::string& id, int port_count) {
  return fabric_.add_switch(id, port_count);
}

Result<void> SdnNetwork::connect(const std::string& a, int port_a,
                                 const std::string& b, int port_b,
                                 model::LinkAttrs attrs) {
  UNIFY_RETURN_IF_ERROR(fabric_.connect(a, port_a, b, port_b));
  wires_.push_back(WireInfo{a, port_a, b, port_b, attrs});
  return Result<void>::success();
}

Result<void> SdnNetwork::attach_sap(const std::string& sap,
                                    const std::string& sw, int port,
                                    model::LinkAttrs attrs) {
  UNIFY_RETURN_IF_ERROR(fabric_.attach(sap, sw, port));
  saps_.push_back(SapInfo{sap, sw, port, attrs});
  return Result<void>::success();
}

Result<void> SdnNetwork::install_flow(const std::string& sw, FlowEntry entry) {
  FlowSwitch* fs = fabric_.find_switch(sw);
  if (fs == nullptr) {
    return Error{ErrorCode::kNotFound, "switch " + sw};
  }
  clock_->advance(config_.flow_mod_latency_us);
  ++flow_ops_;
  return fs->install(std::move(entry));
}

Result<void> SdnNetwork::remove_flow(const std::string& sw,
                                     const std::string& entry_id) {
  FlowSwitch* fs = fabric_.find_switch(sw);
  if (fs == nullptr) {
    return Error{ErrorCode::kNotFound, "switch " + sw};
  }
  clock_->advance(config_.flow_mod_latency_us);
  ++flow_ops_;
  return fs->remove(entry_id);
}

}  // namespace unify::infra
