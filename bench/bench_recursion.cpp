// E4 — recursive orchestration (paper showcase iii).
//
// Builds UNIFY hierarchies of varying depth (each level a full RO +
// single-BiS-BiS virtualizer speaking the Unify RPC to its parent) and
// fan-out (children per level), then measures the cost of deploying one
// chain at the top: wall time, Unify messages exchanged and simulated
// control-plane latency, all growing with depth — the price of delegation
// quantified (DESIGN.md §6.2).
#include <benchmark/benchmark.h>

#include "core/resource_orchestrator.h"
#include "core/unify_api.h"
#include "core/virtualizer.h"
#include "mapping/chain_dp_mapper.h"
#include "model/nffg_builder.h"

namespace {

using namespace unify;

class StaticAdapter final : public adapters::DomainAdapter {
 public:
  StaticAdapter(std::string name, model::Nffg view)
      : name_(std::move(name)), view_(std::move(view)) {}
  const std::string& domain() const noexcept override { return name_; }
  Result<model::Nffg> fetch_view() override { return view_; }
  Result<void> apply(const model::Nffg&) override {
    return Result<void>::success();
  }
  std::uint64_t native_operations() const noexcept override { return 0; }

 private:
  std::string name_;
  model::Nffg view_;
};

/// Leaf infra: one BiS-BiS with a customer SAP (first leaf also gets the
/// ingress SAP) and stitching SAPs linking consecutive leaves.
model::Nffg leaf_infra(const std::string& name, int leaf, int fanout) {
  model::Nffg g{name + "-infra"};
  (void)g.add_bisbis(
      model::make_bisbis(name + "-bb", {64, 65536, 500}, 4, 0.05));
  if (leaf == 0) {
    model::attach_sap(g, "sap-in", name + "-bb", 0, {10000, 0.1});
  }
  model::attach_sap(g, "sap-out-" + name, name + "-bb", 1, {10000, 0.1});
  if (leaf > 0) {  // backward stitch shared with the previous leaf
    model::attach_sap(g, "stitch" + std::to_string(leaf), name + "-bb", 2,
                      {10000, 0.3});
  }
  if (leaf + 1 < fanout) {  // forward stitch shared with the next leaf
    model::attach_sap(g, "stitch" + std::to_string(leaf + 1), name + "-bb",
                      3, {10000, 0.3});
  }
  return g;
}

struct Hierarchy {
  SimClock clock;
  std::vector<std::unique_ptr<core::ResourceOrchestrator>> ros;
  std::vector<std::unique_ptr<core::Virtualizer>> virtualizers;
  core::ResourceOrchestrator* top = nullptr;
};

/// Chain of `depth` stacked UNIFY levels, `fanout` leaf domains at the
/// bottom level (siblings stitched pairwise through shared SAPs).
std::unique_ptr<Hierarchy> build(int depth, int fanout) {
  auto h = std::make_unique<Hierarchy>();

  // Bottom level: fanout leaf ROs over static infra.
  std::vector<core::Virtualizer*> children;
  for (int leaf = 0; leaf < fanout; ++leaf) {
    const std::string name = "leaf" + std::to_string(leaf);
    auto ro = std::make_unique<core::ResourceOrchestrator>(
        name, std::make_shared<mapping::ChainDpMapper>(),
        catalog::default_catalog());
    model::Nffg infra = leaf_infra(name, leaf, fanout);
    (void)ro->add_domain(
        std::make_unique<StaticAdapter>(name + "-infra", std::move(infra)));
    if (!ro->initialize().ok()) std::abort();
    auto virt = std::make_unique<core::Virtualizer>(
        *ro, core::ViewPolicy::kSingleBisBis, name + ".big");
    children.push_back(virt.get());
    h->ros.push_back(std::move(ro));
    h->virtualizers.push_back(std::move(virt));
  }

  // Stack `depth - 1` aggregation levels on top.
  for (int level = 1; level < depth; ++level) {
    auto ro = std::make_unique<core::ResourceOrchestrator>(
        "level" + std::to_string(level),
        std::make_shared<mapping::ChainDpMapper>(),
        catalog::default_catalog());
    for (std::size_t c = 0; c < children.size(); ++c) {
      (void)ro->add_domain(core::make_unify_link(
          *children[c], h->clock,
          "child" + std::to_string(level) + "-" + std::to_string(c)));
    }
    if (!ro->initialize().ok()) std::abort();
    auto virt = std::make_unique<core::Virtualizer>(
        *ro, core::ViewPolicy::kSingleBisBis,
        "level" + std::to_string(level) + ".big");
    children = {virt.get()};
    h->ros.push_back(std::move(ro));
    h->virtualizers.push_back(std::move(virt));
  }
  h->top = h->ros.back().get();
  return h;
}

void BM_DeployThroughHierarchy(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  const int fanout = static_cast<int>(state.range(1));
  auto h = build(depth, fanout);

  std::uint64_t iteration = 0;
  SimTime sim_total = 0;
  for (auto _ : state) {
    const std::string id = "svc" + std::to_string(iteration++);
    const SimTime before = h->clock.now();
    auto request = h->top->deploy(
        sg::make_chain(id, "sap-in", {"firewall", "nat"},
                       "sap-out-leaf0", 10, 500));
    if (!request.ok()) {
      state.SkipWithError(request.error().to_string().c_str());
      break;
    }
    if (!h->top->remove(id).ok()) {
      state.SkipWithError("remove failed");
      break;
    }
    sim_total += h->clock.now() - before;
  }
  if (iteration > 0) {
    state.counters["sim_ms_per_cycle"] =
        static_cast<double>(sim_total) / 1000.0 /
        static_cast<double>(iteration);
  }
}

BENCHMARK(BM_DeployThroughHierarchy)
    ->Args({1, 1})
    ->Args({2, 1})
    ->Args({3, 1})
    ->Args({4, 1})
    ->Args({2, 2})
    ->Args({2, 4})
    ->Args({3, 2})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
