// Southbound push fan-out: sequential vs parallel slice pushes across
// 2/4/8 domains whose control channels each charge ~1ms of host latency
// (FaultyAdapter::set_latency_us). Sequential cost grows with the domain
// count; the pool fan-out pays roughly one channel's latency regardless —
// the wall-clock win the push pipeline redesign exists for. Domain count
// is the benchmark argument; "seq" forces push.parallelism = 1, "par"
// uses a private pool as wide as the domain count.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "adapters/faulty_adapter.h"
#include "core/resource_orchestrator.h"
#include "mapping/chain_dp_mapper.h"
#include "model/nffg_builder.h"
#include "util/orchestration_pool.h"

namespace {

using namespace unify;

constexpr std::int64_t kChannelLatencyUs = 1000;

/// Accept-everything domain with no shared machinery (exclusion_key stays
/// null, so pushes to different instances may run concurrently).
class AcceptAllAdapter final : public adapters::DomainAdapter {
 public:
  AcceptAllAdapter(std::string name, model::Nffg view)
      : name_(std::move(name)), view_(std::move(view)) {}
  [[nodiscard]] const std::string& domain() const noexcept override {
    return name_;
  }
  [[nodiscard]] Result<model::Nffg> fetch_view() override { return view_; }
  Result<void> apply(const model::Nffg&) override {
    return Result<void>::success();
  }
  [[nodiscard]] std::uint64_t native_operations() const noexcept override {
    return 0;
  }

 private:
  std::string name_;
  model::Nffg view_;
};

/// Domain i of an n-domain line topology (stitching SAP x<i> shared with
/// the next domain).
model::Nffg line_domain_view(std::size_t i, std::size_t n) {
  const std::string bb = "bb" + std::to_string(i);
  model::Nffg g{bb + "-view"};
  (void)g.add_bisbis(model::make_bisbis(bb, {32, 32768, 400}, 6));
  model::attach_sap(g, "sap" + std::to_string(i), bb, 0, {1000, 0.1});
  if (i > 0) {
    model::attach_sap(g, "x" + std::to_string(i - 1), bb, 1, {1000, 0.5});
  }
  if (i + 1 < n) {
    model::attach_sap(g, "x" + std::to_string(i), bb, 2, {1000, 0.5});
  }
  return g;
}

void run(benchmark::State& state, bool parallel) {
  const auto domains = static_cast<std::size_t>(state.range(0));
  util::OrchestrationPool pool(domains);
  core::RoOptions options;
  options.pool = &pool;
  // Every iteration must really push every domain: measure the fan-out,
  // not the dirty-tracking fast path.
  options.push.skip_clean = false;
  options.push.parallelism = parallel ? 0 : 1;

  core::ResourceOrchestrator ro("ro",
                                std::make_shared<mapping::ChainDpMapper>(),
                                catalog::default_catalog(), options);
  for (std::size_t i = 0; i < domains; ++i) {
    auto inner = std::make_unique<AcceptAllAdapter>(
        "d" + std::to_string(i), line_domain_view(i, domains));
    auto faulty = std::make_unique<adapters::FaultyAdapter>(std::move(inner));
    faulty->set_latency_us(kChannelLatencyUs);
    if (!ro.add_domain(std::move(faulty)).ok()) {
      state.SkipWithError("add_domain failed");
      return;
    }
  }
  if (!ro.initialize().ok()) {
    state.SkipWithError("initialize failed");
    return;
  }

  for (auto _ : state) {
    if (!ro.resync_domains().ok()) {
      state.SkipWithError("resync failed");
      break;
    }
  }
  state.counters["domains"] = static_cast<double>(domains);
  state.counters["slice_pushes"] =
      static_cast<double>(ro.metrics().counter("ro.slice_pushes"));
}

void BM_PushSequential(benchmark::State& state) { run(state, false); }
void BM_PushParallel(benchmark::State& state) { run(state, true); }

}  // namespace

BENCHMARK(BM_PushSequential)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_PushParallel)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

BENCHMARK_MAIN();
