// E3 — embedding algorithm comparison.
//
// Mapping time of each algorithm vs substrate family and chain length,
// plus an offline acceptance sweep: how many chains each algorithm packs
// onto the same substrate before the first rejection. Baselines (first-fit
// and random) route with the same path engine, isolating the placement
// policy as the variable.
#include <benchmark/benchmark.h>

#include "core/resource_orchestrator.h"
#include "infra/topologies.h"
#include "mapping/annealing_mapper.h"
#include "mapping/backtracking_mapper.h"
#include "mapping/baseline_mappers.h"
#include "mapping/bnb_mapper.h"
#include "mapping/chain_dp_mapper.h"
#include "mapping/greedy_mapper.h"
#include "mapping/list_mapper.h"
#include "mapping/mapper.h"
#include "mapping/nsga2_mapper.h"
#include "service/service_layer.h"

namespace {

using namespace unify;

std::unique_ptr<mapping::Mapper> make_mapper(int which) {
  switch (which) {
    case 0: return std::make_unique<mapping::GreedyMapper>();
    case 1: return std::make_unique<mapping::ChainDpMapper>();
    case 2: return std::make_unique<mapping::BacktrackingMapper>();
    case 3: return std::make_unique<mapping::FirstFitMapper>();
    case 4: return std::make_unique<mapping::RandomMapper>();
    case 5: return std::make_unique<mapping::AnnealingMapper>();
    case 6: return std::make_unique<mapping::ListMapper>();
    case 7: return std::make_unique<mapping::Nsga2Mapper>();
    default: return std::make_unique<mapping::BnbMapper>();
  }
}
constexpr int kMapperCount = 9;

model::Nffg make_substrate(int which) {
  switch (which) {
    case 0: return infra::topo::leaf_spine(2, 8, 2);
    case 1: return infra::topo::ring(12, 2);
    default: {
      Rng rng(7);
      return infra::topo::random_connected(16, 3.0, 2, rng);
    }
  }
}

const char* substrate_name(int which) {
  switch (which) {
    case 0: return "leaf-spine";
    case 1: return "ring";
    default: return "random";
  }
}

/// Args: {mapper, substrate, chain length}.
void BM_MapChain(benchmark::State& state) {
  const auto mapper = make_mapper(static_cast<int>(state.range(0)));
  const model::Nffg substrate = make_substrate(static_cast<int>(state.range(1)));
  const int length = static_cast<int>(state.range(2));
  const catalog::NfCatalog cat = catalog::default_catalog();
  std::vector<std::string> nf_types;
  for (int i = 0; i < length; ++i) {
    nf_types.push_back(i % 2 == 0 ? "fw-lite" : "monitor");
  }
  const sg::ServiceGraph sg =
      sg::make_chain("chain", "sap1", nf_types, "sap2", 100, 1000);

  std::size_t failures = 0;
  double bw_hops = 0;
  double delay = 0;
  for (auto _ : state) {
    auto mapping = mapper->map(sg, substrate, cat);
    if (!mapping.ok()) {
      ++failures;
    } else {
      bw_hops = mapping->stats.bandwidth_hops;
      delay = 0;
      for (const auto& [req, d] : mapping->requirement_delay) delay += d;
    }
    benchmark::DoNotOptimize(mapping);
  }
  state.SetLabel(std::string(substrate_name(static_cast<int>(state.range(1)))) +
                 "/" + mapper->name());
  state.counters["failed"] = static_cast<double>(failures);
  state.counters["bw_hops"] = bw_hops;
  state.counters["delay_ms"] = delay;
}

/// Acceptance under load: install chains until the first rejection.
/// Args: {mapper, substrate}. The count is the series of interest; time per
/// iteration covers the whole fill sequence.
void BM_FillUntilRejection(benchmark::State& state) {
  const auto mapper = make_mapper(static_cast<int>(state.range(0)));
  const catalog::NfCatalog cat = catalog::default_catalog();
  std::size_t accepted_total = 0;
  std::size_t rounds = 0;
  for (auto _ : state) {
    model::Nffg substrate = make_substrate(static_cast<int>(state.range(1)));
    std::size_t accepted = 0;
    for (int i = 0; i < 256; ++i) {
      const std::string id = "svc" + std::to_string(i);
      const sg::ServiceGraph sg = service::prefix_elements(
          sg::make_chain(id, "sap1",
                         {i % 2 == 0 ? "fw-lite" : "monitor"}, "sap2", 200,
                         1000),
          id);
      auto mapping = mapper->map(sg, substrate, cat);
      if (!mapping.ok()) break;
      if (!mapping::install_mapping(substrate, sg, cat, *mapping).ok()) {
        break;
      }
      ++accepted;
    }
    accepted_total += accepted;
    ++rounds;
  }
  state.SetLabel(std::string(substrate_name(static_cast<int>(state.range(1)))) +
                 "/" + mapper->name());
  if (rounds > 0) {
    state.counters["chains_accepted"] =
        static_cast<double>(accepted_total) / static_cast<double>(rounds);
  }
}

void map_args(benchmark::internal::Benchmark* bench) {
  for (int mapper = 0; mapper < kMapperCount; ++mapper) {
    for (int substrate = 0; substrate < 3; ++substrate) {
      for (const int length : {2, 4, 8}) {
        bench->Args({mapper, substrate, length});
      }
    }
  }
}

void fill_args(benchmark::internal::Benchmark* bench) {
  for (int mapper = 0; mapper < kMapperCount; ++mapper) {
    for (int substrate = 0; substrate < 3; ++substrate) {
      bench->Args({mapper, substrate});
    }
  }
}

/// Canned-view adapter so the RO front-end can be benchmarked without real
/// domains.
class StaticAdapter final : public adapters::DomainAdapter {
 public:
  StaticAdapter(std::string name, model::Nffg view)
      : name_(std::move(name)), view_(std::move(view)) {}
  const std::string& domain() const noexcept override { return name_; }
  Result<model::Nffg> fetch_view() override { return view_; }
  Result<void> apply(const model::Nffg&) override {
    return Result<void>::success();
  }
  std::uint64_t native_operations() const noexcept override { return 0; }

 private:
  std::string name_;
  model::Nffg view_;
};

std::unique_ptr<core::ResourceOrchestrator> batch_ro() {
  auto ro = std::make_unique<core::ResourceOrchestrator>(
      "ro", std::make_shared<mapping::ChainDpMapper>(),
      catalog::default_catalog());
  (void)ro->add_domain(std::make_unique<StaticAdapter>(
      "d1", infra::topo::leaf_spine(2, 8, 2)));
  (void)ro->initialize();
  return ro;
}

/// Batch throughput: the same `requests` independent chains deployed
/// through a sequential deploy() loop (workers == 0) or through
/// map_batch() on a worker pool. Args: {requests, workers}.
void BM_BatchDeploy(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int workers = static_cast<int>(state.range(1));
  std::vector<sg::ServiceGraph> requests;
  for (int i = 0; i < n; ++i) {
    const std::string id = "svc" + std::to_string(i);
    requests.push_back(service::prefix_elements(
        sg::make_chain(id, "sap1",
                       {i % 2 == 0 ? "fw-lite" : "monitor"}, "sap2", 10,
                       1000),
        id));
  }

  std::size_t failures = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto ro = batch_ro();  // fresh view per lap; setup excluded
    state.ResumeTiming();
    if (workers == 0) {
      for (const sg::ServiceGraph& request : requests) {
        if (!ro->deploy(request).ok()) ++failures;
      }
    } else {
      for (const auto& result :
           ro->map_batch(requests, static_cast<std::size_t>(workers))) {
        if (!result.ok()) ++failures;
      }
    }
  }
  state.SetLabel(workers == 0 ? "sequential"
                              : "batch/w" + std::to_string(workers));
  state.counters["failed"] = static_cast<double>(failures);
  state.counters["chains_per_s"] = benchmark::Counter(
      static_cast<double>(n) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}

void batch_args(benchmark::internal::Benchmark* bench) {
  for (const int n : {8, 32}) {
    for (const int workers : {0, 1, 2, 4}) {
      bench->Args({n, workers});
    }
  }
}

BENCHMARK(BM_MapChain)->Apply(map_args)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_FillUntilRejection)
    ->Apply(fill_args)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BatchDeploy)->Apply(batch_args)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
