// E5 — NF decomposition during mapping (paper showcase iii, after
// [Sahhaf et al., NetSoft 2015]).
//
// Compares three strategies on the same substrate and request stream:
//   monolithic      — the composite NF deploys as one big instance
//                     (decomposition disabled, catalog footprint),
//   pre-expanded    — the service graph is expanded with the first rule
//                     before mapping (decomposition without choice),
//   decomp-aware    — alternatives enumerated during mapping, cheapest
//                     feasible realization wins (the paper's approach).
// Series: mapping time; counters: chains accepted before first rejection
// (capacity utilization benefit) and substrate load of the chosen mapping.
#include <benchmark/benchmark.h>

#include "catalog/decomposition.h"
#include "infra/topologies.h"
#include "mapping/chain_dp_mapper.h"
#include "mapping/decomp_aware_mapper.h"
#include "service/service_layer.h"

namespace {

using namespace unify;

enum class Strategy { kMonolithic, kPreExpanded, kDecompAware };

sg::ServiceGraph request(int i) {
  const std::string id = "svc" + std::to_string(i);
  return service::prefix_elements(
      sg::make_chain(id, "sap1", {"secure-gw"}, "sap2", 50, 1000), id);
}

Result<mapping::Mapping> map_with(Strategy strategy,
                                  const sg::ServiceGraph& sg,
                                  const model::Nffg& substrate,
                                  const catalog::NfCatalog& cat,
                                  sg::ServiceGraph& expanded_out) {
  const mapping::ChainDpMapper inner;
  switch (strategy) {
    case Strategy::kMonolithic: {
      expanded_out = sg;  // abstract NF kept as-is
      return inner.map(sg, substrate, cat);
    }
    case Strategy::kPreExpanded: {
      sg::ServiceGraph expanded = sg;
      UNIFY_ASSIGN_OR_RETURN(const std::size_t applied,
                             catalog::expand_all(expanded, cat));
      (void)applied;
      expanded_out = expanded;
      return inner.map(expanded, substrate, cat);
    }
    case Strategy::kDecompAware: {
      const mapping::DecompAwareMapper mapper(
          std::make_shared<mapping::ChainDpMapper>());
      UNIFY_ASSIGN_OR_RETURN(
          mapping::DecompResult result,
          mapper.map_with_decomposition(sg, substrate, cat));
      expanded_out = std::move(result.expanded);
      return std::move(result.mapping);
    }
  }
  return Error{ErrorCode::kInternal, "unreachable"};
}

const char* name_of(Strategy strategy) {
  switch (strategy) {
    case Strategy::kMonolithic:  return "monolithic";
    case Strategy::kPreExpanded: return "pre-expanded";
    case Strategy::kDecompAware: return "decomp-aware";
  }
  return "?";
}

void BM_MapSecureGw(benchmark::State& state) {
  const auto strategy = static_cast<Strategy>(state.range(0));
  const model::Nffg substrate = infra::topo::leaf_spine(2, 6, 2);
  const catalog::NfCatalog cat = catalog::default_catalog();
  const sg::ServiceGraph sg = request(0);
  double load = 0;
  for (auto _ : state) {
    sg::ServiceGraph expanded;
    auto mapping = map_with(strategy, sg, substrate, cat, expanded);
    if (!mapping.ok()) {
      state.SkipWithError(mapping.error().to_string().c_str());
      break;
    }
    load = mapping->stats.bandwidth_hops;
    benchmark::DoNotOptimize(mapping);
  }
  state.SetLabel(name_of(strategy));
  state.counters["bw_hops"] = load;
}

/// Fill the substrate with secure-gw chains until the first rejection.
void BM_FillSecureGw(benchmark::State& state) {
  const auto strategy = static_cast<Strategy>(state.range(0));
  const catalog::NfCatalog cat = catalog::default_catalog();
  std::size_t accepted_total = 0;
  std::size_t rounds = 0;
  for (auto _ : state) {
    // Tight substrate: per-node cpu of 5 fits the secure-gw-split (5 cpu)
    // but not the monolithic instance (6 cpu) nor the vpn+dpi variant.
    infra::topo::TopoParams params;
    params.node_capacity = {5, 8192, 100};
    model::Nffg substrate = infra::topo::ring(8, 2, params);
    std::size_t accepted = 0;
    for (int i = 0; i < 64; ++i) {
      sg::ServiceGraph expanded;
      auto mapping = map_with(strategy, request(i), substrate, cat,
                              expanded);
      if (!mapping.ok()) break;
      if (!mapping::install_mapping(substrate, expanded, cat, *mapping)
               .ok()) {
        break;
      }
      ++accepted;
    }
    accepted_total += accepted;
    ++rounds;
  }
  state.SetLabel(name_of(strategy));
  if (rounds > 0) {
    state.counters["chains_accepted"] =
        static_cast<double>(accepted_total) / static_cast<double>(rounds);
  }
}

BENCHMARK(BM_MapSecureGw)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_FillSecureGw)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
