// E1 — joint domain abstraction (paper showcase i).
//
// Measures the cost of generating the two client views from a merged
// multi-domain resource graph: the collapsed single-BiS-BiS view (which
// must compute worst-case transit delays across the whole substrate) vs
// the full topology view, as domain count and per-domain size grow.
// Series reported: wall time per view generation; counters carry the
// underlying view size.
#include <benchmark/benchmark.h>

#include "catalog/nf_catalog.h"
#include "core/resource_orchestrator.h"
#include "core/virtualizer.h"
#include "infra/topologies.h"
#include "mapping/greedy_mapper.h"
#include "model/nffg_builder.h"
#include "model/nffg_merge.h"

namespace {

using namespace unify;

/// Fake adapter serving a canned domain view.
class StaticAdapter final : public adapters::DomainAdapter {
 public:
  StaticAdapter(std::string name, model::Nffg view)
      : name_(std::move(name)), view_(std::move(view)) {}
  const std::string& domain() const noexcept override { return name_; }
  Result<model::Nffg> fetch_view() override { return view_; }
  Result<void> apply(const model::Nffg&) override {
    return Result<void>::success();
  }
  std::uint64_t native_operations() const noexcept override { return 0; }

 private:
  std::string name_;
  model::Nffg view_;
};

/// A ring domain with one customer SAP and chained stitching SAPs so the
/// domains merge into one connected substrate.
model::Nffg ring_domain(int index, int nodes) {
  infra::topo::TopoParams params;
  model::Nffg g = infra::topo::ring(nodes, 1, params);
  // Rename to guarantee global uniqueness.
  model::Nffg out{"d" + std::to_string(index)};
  const std::string prefix = "d" + std::to_string(index) + "-";
  for (const auto& [id, bb] : g.bisbis()) {
    model::BisBis copy = bb;
    copy.id = prefix + id;
    (void)out.add_bisbis(std::move(copy));
  }
  for (const auto& [id, sap] : g.saps()) {
    (void)out.add_sap(model::Sap{prefix + sap.id, ""});
  }
  for (const auto& [id, link] : g.links()) {
    model::Link copy = link;
    copy.id = prefix + id;
    copy.from.node = prefix + copy.from.node;
    copy.to.node = prefix + copy.to.node;
    (void)out.add_link(std::move(copy));
  }
  // Stitching SAPs towards the previous/next domain.
  model::attach_sap(out, "xp" + std::to_string(index), prefix + "bb1", 3,
                    {10000, 0.5});
  model::attach_sap(out, "xp" + std::to_string(index + 1),
                    prefix + "bb2", 3, {10000, 0.5});
  return out;
}

std::unique_ptr<core::ResourceOrchestrator> build_ro(int domains,
                                                     int nodes_per_domain) {
  auto ro = std::make_unique<core::ResourceOrchestrator>(
      "bench-ro", std::make_shared<mapping::GreedyMapper>(),
      catalog::default_catalog());
  for (int d = 0; d < domains; ++d) {
    model::Nffg view = ring_domain(d, nodes_per_domain);
    if (d == 0) (void)view.remove_sap("xp0");  // no dangling stitch at ends
    if (d == domains - 1) {
      (void)view.remove_sap("xp" + std::to_string(domains));
    }
    (void)ro->add_domain(
        std::make_unique<StaticAdapter>("d" + std::to_string(d),
                                        std::move(view)));
  }
  if (!ro->initialize().ok()) std::abort();
  return ro;
}

void BM_SingleBisBisView(benchmark::State& state) {
  const int domains = static_cast<int>(state.range(0));
  const int nodes = static_cast<int>(state.range(1));
  auto ro = build_ro(domains, nodes);
  for (auto _ : state) {
    core::Virtualizer virt(*ro, core::ViewPolicy::kSingleBisBis);
    auto view = virt.get_config();
    if (!view.ok()) state.SkipWithError("view generation failed");
    benchmark::DoNotOptimize(view);
  }
  state.counters["bisbis_under"] =
      static_cast<double>(ro->global_view().bisbis().size());
  state.counters["links_under"] =
      static_cast<double>(ro->global_view().links().size());
}

void BM_FullView(benchmark::State& state) {
  const int domains = static_cast<int>(state.range(0));
  const int nodes = static_cast<int>(state.range(1));
  auto ro = build_ro(domains, nodes);
  for (auto _ : state) {
    core::Virtualizer virt(*ro, core::ViewPolicy::kFull);
    auto view = virt.get_config();
    if (!view.ok()) state.SkipWithError("view generation failed");
    benchmark::DoNotOptimize(view);
  }
  state.counters["bisbis_under"] =
      static_cast<double>(ro->global_view().bisbis().size());
}

void BM_MergeViews(benchmark::State& state) {
  const int domains = static_cast<int>(state.range(0));
  const int nodes = static_cast<int>(state.range(1));
  std::vector<model::DomainView> views;
  for (int d = 0; d < domains; ++d) {
    model::Nffg view = ring_domain(d, nodes);
    if (d == 0) (void)view.remove_sap("xp0");
    if (d == domains - 1) {
      (void)view.remove_sap("xp" + std::to_string(domains));
    }
    views.push_back(model::DomainView{"d" + std::to_string(d),
                                      std::move(view)});
  }
  for (auto _ : state) {
    auto merged = model::merge_views(views);
    if (!merged.ok()) state.SkipWithError("merge failed");
    benchmark::DoNotOptimize(merged);
  }
}

void args(benchmark::internal::Benchmark* bench) {
  for (const int domains : {1, 2, 4, 8, 16}) {
    bench->Args({domains, 8});
  }
  for (const int nodes : {4, 16, 32, 64}) {
    bench->Args({4, nodes});
  }
}

BENCHMARK(BM_SingleBisBisView)->Apply(args)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_FullView)->Apply(args)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MergeViews)->Apply(args)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
