// E12 — sustained churn through the admission lifecycle (DESIGN.md §12).
//
// Each iteration replays a seeded scenario (Poisson arrivals, heavy-tailed
// lifetimes, optional flash crowd / maintenance / migration storm) through
// a fresh ChurnStack via run_churn — the same driver the `-L churn` soak
// uses — so the numbers reflect the full path: admission queue -> wave
// dispatch -> merged edit-config -> virtualizer -> RO embed -> domain push.
// Series: wall time per scenario vs arrival rate and disruption mix;
// counters: p50/p99 admission latency (sim time from enqueue to deploy),
// shed rate, and peak occupancy (concurrently deployed services).
#include <benchmark/benchmark.h>

#include "service/churn_driver.h"

namespace {

using namespace unify;

infra::churn::ScenarioSpec base_spec(double rate_hz) {
  infra::churn::ScenarioSpec spec;
  spec.horizon_us = 30'000'000;  // 30 sim-seconds per iteration
  spec.arrival_rate_hz = rate_hz;
  spec.lifetime_min_s = 2.0;
  spec.lifetime_cap_s = 30.0;
  return spec;
}

service::AdmissionPolicy bench_policy() {
  service::AdmissionPolicy policy;
  policy.queue_capacity = 128;
  policy.max_wave = 32;
  return policy;
}

void report(benchmark::State& state, const service::ChurnRunReport& totals,
            std::size_t runs) {
  const double n = static_cast<double>(runs);
  state.counters["adm_p50_ms"] = totals.adm_latency_p50_ms / n;
  state.counters["adm_p99_ms"] = totals.adm_latency_p99_ms / n;
  state.counters["shed_rate"] = totals.shed_rate / n;
  state.counters["peak_occupancy"] = static_cast<double>(totals.peak_deployed);
  state.counters["arrivals_per_iter"] =
      static_cast<double>(totals.arrivals) / n;
}

void run_scenario(benchmark::State& state,
                  const infra::churn::ScenarioSpec& spec) {
  service::ChurnRunReport totals;
  std::uint64_t seed = 1;
  std::size_t runs = 0;
  for (auto _ : state) {
    service::ChurnStack stack(3, bench_policy());
    const service::ChurnRunReport run = run_churn(stack, spec, seed++);
    ++runs;
    totals.arrivals += run.arrivals;
    totals.adm_latency_p50_ms += run.adm_latency_p50_ms;
    totals.adm_latency_p99_ms += run.adm_latency_p99_ms;
    totals.shed_rate += run.shed_rate;
    totals.peak_deployed = std::max(totals.peak_deployed, run.peak_deployed);
    benchmark::DoNotOptimize(run.signature.size());
  }
  if (runs > 0) report(state, totals, runs);
}

/// Baseline: homogeneous Poisson arrivals, no disruptions — the steady
/// load the admission path sees most of the time.
void BM_SteadyChurn(benchmark::State& state) {
  run_scenario(state, base_spec(static_cast<double>(state.range(0))));
}

/// Overload: a 4x flash crowd mid-run forces the queue bound and the
/// deadline shed path to do real work.
void BM_FlashCrowdChurn(benchmark::State& state) {
  infra::churn::ScenarioSpec spec =
      base_spec(static_cast<double>(state.range(0)));
  spec.flash_crowds.push_back({10'000'000, 5'000'000, 4.0});
  run_scenario(state, spec);
}

/// Disruption: rolling maintenance plus a migration storm — postpone
/// parking, heal-class priority dispatch and re-embedding all on the path.
void BM_MaintenanceStormChurn(benchmark::State& state) {
  infra::churn::ScenarioSpec spec =
      base_spec(static_cast<double>(state.range(0)));
  infra::churn::add_rolling_maintenance(spec, 8'000'000, 3'000'000,
                                        5'000'000);
  spec.storms.push_back({24'000'000, 0.3});
  run_scenario(state, spec);
}

BENCHMARK(BM_SteadyChurn)->Arg(10)->Arg(20)->Arg(40)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FlashCrowdChurn)->Arg(20)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MaintenanceStormChurn)->Arg(20)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
