// The wire tax of the real transport: the same get-config/edit-config
// exchange measured over loopback TCP (epoll reactor, background server
// thread) and over the in-memory channel, at 1..64 concurrent manager
// sessions. The delta between the two is what the socket path costs —
// syscalls, copies, reactor dispatch — on top of the shared serialize /
// parse / orchestrate work. Counters report RPC throughput and p50/p99
// round-trip latency.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "infra/topologies.h"
#include "model/nffg_json.h"
#include "proto/channel.h"
#include "proto/net/tcp.h"
#include "proto/rpc.h"

namespace {

using namespace unify;
using WallClock = std::chrono::steady_clock;

/// The served payload: a 32-node ring NFFG, the mid-size regime of
/// bench_protocol, so wire numbers are comparable across the two benches.
json::Value served_config() {
  infra::topo::TopoParams params;
  const model::Nffg g = infra::topo::ring(32, 2, params);
  json::Object out;
  out.set("config", model::to_json(g));
  return json::Value{std::move(out)};
}

/// Installs the server half on a peer: get-config returns the canned
/// config, edit-config parses the pushed one and acknowledges — the same
/// work regardless of the transport underneath.
void install_handlers(proto::RpcPeer& server, const json::Value& config) {
  server.on_request("get-config",
                    [&config](const json::Value&) -> Result<json::Value> {
                      return config;
                    });
  server.on_request("edit-config",
                    [](const json::Value& params) -> Result<json::Value> {
                      const json::Value* pushed = params.get("config");
                      if (pushed == nullptr) {
                        return Error{ErrorCode::kProtocol, "missing config"};
                      }
                      UNIFY_ASSIGN_OR_RETURN(const model::Nffg parsed,
                                             model::nffg_from_json(*pushed));
                      benchmark::DoNotOptimize(parsed);
                      return json::Value{json::Object{}};
                    });
}

struct Rtts {
  std::vector<double> us;
  void report(benchmark::State& state) {
    if (us.empty()) return;
    std::sort(us.begin(), us.end());
    const auto pct = [this](double p) {
      return us[static_cast<std::size_t>(
          p * static_cast<double>(us.size() - 1))];
    };
    state.counters["rtt_p50_us"] = pct(0.50);
    state.counters["rtt_p99_us"] = pct(0.99);
  }
};

/// One closed-loop round: every session has exactly one RPC in flight;
/// completion launches the next until each session did `per_session`.
void drive_sessions(std::vector<proto::RpcPeer*>& peers, proto::Driver& driver,
                    const json::Value& edit_params, int per_session,
                    Rtts& rtts) {
  struct SessionState {
    int done = 0;
    WallClock::time_point sent_at;
  };
  std::vector<SessionState> states(peers.size());
  int in_flight = 0;
  std::function<void(std::size_t)> fire = [&](std::size_t i) {
    const bool edit = (states[i].done % 2) == 1;
    states[i].sent_at = WallClock::now();
    ++in_flight;
    const auto sent = peers[i]->call(
        edit ? "edit-config" : "get-config",
        edit ? edit_params : json::Value{json::Object{}},
        [&, i](Result<json::Value> reply) {
          --in_flight;
          if (!reply.ok()) return;
          rtts.us.push_back(std::chrono::duration<double, std::micro>(
                                WallClock::now() - states[i].sent_at)
                                .count());
          if (++states[i].done < per_session) fire(i);
        });
    if (!sent.ok()) --in_flight;
  };
  for (std::size_t i = 0; i < peers.size(); ++i) fire(i);
  while (in_flight > 0 && driver.pump()) {
  }
}

void BM_WireInMemory(benchmark::State& state) {
  const int session_count = static_cast<int>(state.range(0));
  const json::Value config = served_config();
  json::Object edit;
  edit.set("config", *config.get("config"));
  const json::Value edit_params{std::move(edit)};

  SimClock clock;
  std::vector<std::unique_ptr<proto::RpcPeer>> clients, servers;
  std::vector<proto::RpcPeer*> peers;
  for (int i = 0; i < session_count; ++i) {
    auto [north, south] = proto::make_channel_pair(clock, 100);
    clients.push_back(std::make_unique<proto::RpcPeer>(north, "client"));
    servers.push_back(std::make_unique<proto::RpcPeer>(south, "server"));
    install_handlers(*servers.back(), config);
    peers.push_back(clients.back().get());
  }
  Rtts rtts;
  for (auto _ : state) {
    drive_sessions(peers, peers[0]->driver(), edit_params, 4, rtts);
  }
  state.SetItemsProcessed(state.iterations() * session_count * 4);
  rtts.report(state);
}

void BM_WireTcpLoopback(benchmark::State& state) {
  const int session_count = static_cast<int>(state.range(0));
  const json::Value config = served_config();
  json::Object edit;
  edit.set("config", *config.get("config"));
  const json::Value edit_params{std::move(edit)};

  // Server: its own reactor on a background thread, one RpcPeer per
  // accepted connection.
  std::atomic<bool> stop{false};
  std::promise<std::uint16_t> port_promise;
  auto port_future = port_promise.get_future();
  std::thread server_thread([&] {
    const json::Value served = served_config();
    proto::net::Reactor reactor;
    std::vector<std::unique_ptr<proto::RpcPeer>> sessions;
    auto listener = proto::net::TcpListener::listen(
        reactor, "127.0.0.1", 0,
        [&](std::shared_ptr<proto::net::TcpTransport> conn) {
          sessions.push_back(
              std::make_unique<proto::RpcPeer>(std::move(conn), "server"));
          install_handlers(*sessions.back(), served);
        });
    port_promise.set_value(listener.ok() ? (*listener)->port() : 0);
    if (!listener.ok()) return;
    while (!stop.load()) reactor.poll(10);
  });
  const std::uint16_t port = port_future.get();
  if (port == 0) {
    stop.store(true);
    server_thread.join();
    state.SkipWithError("listen failed");
    return;
  }

  proto::net::Reactor reactor;
  std::vector<std::unique_ptr<proto::RpcPeer>> clients;
  std::vector<proto::RpcPeer*> peers;
  for (int i = 0; i < session_count; ++i) {
    auto conn = proto::net::TcpTransport::connect(reactor, "127.0.0.1", port);
    if (!conn.ok()) {
      stop.store(true);
      server_thread.join();
      state.SkipWithError("connect failed");
      return;
    }
    clients.push_back(std::make_unique<proto::RpcPeer>(std::move(*conn),
                                                       "client"));
    peers.push_back(clients.back().get());
  }

  Rtts rtts;
  for (auto _ : state) {
    drive_sessions(peers, reactor, edit_params, 4, rtts);
  }
  state.SetItemsProcessed(state.iterations() * session_count * 4);
  rtts.report(state);

  stop.store(true);
  server_thread.join();
}

BENCHMARK(BM_WireInMemory)->Arg(1)->Arg(8)->Arg(64)->Unit(
    benchmark::kMillisecond);
BENCHMARK(BM_WireTcpLoopback)->Arg(1)->Arg(8)->Arg(64)->Unit(
    benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
