// Healing pass cost: K services are stranded on a killed domain (their
// NFs pinned there; endpoints on survivors) and one heal() call must
// probe the dead domain, fail, and re-embed all K onto the remaining
// 2/4/8 domains. Measures the time-to-heal the circuit breaker buys —
// the benchmark argument is the survivor count, so it shows how healing
// scales with the capacity left to re-embed into.
//
// Two variants: make-before-break (the default — replacements are mapped
// and installed before the stranded placements are released) against the
// legacy uninstall-then-redeploy baseline. The max_dip_cpu counter is the
// worst in-flight capacity dip heal() reported: 0 for make-before-break,
// the full stranded footprint for the baseline.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "adapters/faulty_adapter.h"
#include "core/resource_orchestrator.h"
#include "mapping/chain_dp_mapper.h"
#include "model/nffg_builder.h"
#include "sg/service_graph.h"

namespace {

using namespace unify;

constexpr std::size_t kStrandedServices = 8;

class AcceptAllAdapter final : public adapters::DomainAdapter {
 public:
  AcceptAllAdapter(std::string name, model::Nffg view)
      : name_(std::move(name)), view_(std::move(view)) {}
  [[nodiscard]] const std::string& domain() const noexcept override {
    return name_;
  }
  [[nodiscard]] Result<model::Nffg> fetch_view() override { return view_; }
  Result<void> apply(const model::Nffg&) override {
    return Result<void>::success();
  }
  [[nodiscard]] std::uint64_t native_operations() const noexcept override {
    return 0;
  }

 private:
  std::string name_;
  model::Nffg view_;
};

/// Domain i of an n-domain line (stitch SAP x<i> shared with the next).
model::Nffg line_domain_view(std::size_t i, std::size_t n) {
  const std::string bb = "bb" + std::to_string(i);
  model::Nffg g{bb + "-view"};
  (void)g.add_bisbis(model::make_bisbis(bb, {64, 65536, 800}, 6));
  model::attach_sap(g, "sap" + std::to_string(i), bb, 0, {1000, 0.1});
  if (i > 0) {
    model::attach_sap(g, "x" + std::to_string(i - 1), bb, 1, {1000, 0.5});
  }
  if (i + 1 < n) {
    model::attach_sap(g, "x" + std::to_string(i), bb, 2, {1000, 0.5});
  }
  return g;
}

/// sap<from> -> nf<k> -> sap<to>, with its NF pinned onto the victim.
sg::ServiceGraph stranded_chain(std::size_t k, std::size_t from,
                                std::size_t to) {
  sg::ServiceGraph g{"s" + std::to_string(k)};
  const std::string nf = "nf" + std::to_string(k);
  (void)g.add_sap("sap" + std::to_string(from));
  (void)g.add_sap("sap" + std::to_string(to));
  (void)g.add_nf(sg::SgNf{nf, "nat", 2, model::Resources{1, 512, 1}});
  (void)g.add_link(sg::SgLink{
      "in", {"sap" + std::to_string(from), 0}, {nf, 0}, 5});
  (void)g.add_link(sg::SgLink{
      "out", {nf, 1}, {"sap" + std::to_string(to), 0}, 5});
  (void)g.add_requirement(sg::E2eRequirement{
      "e2e", "sap" + std::to_string(from), "sap" + std::to_string(to), 500,
      5});
  return g;
}

void BM_HealStrandedServices(benchmark::State& state,
                             bool make_before_break) {
  const auto survivors = static_cast<std::size_t>(state.range(0));
  const std::size_t domains = survivors + 1;  // domain 0 is the victim
  std::uint64_t heals = 0;
  double max_dip_cpu = 0;

  for (auto _ : state) {
    state.PauseTiming();
    core::RoOptions options;
    options.health.make_before_break = make_before_break;
    core::ResourceOrchestrator ro(
        "ro", std::make_shared<mapping::ChainDpMapper>(),
        catalog::default_catalog(), options);
    std::vector<adapters::FaultyAdapter*> faults;
    for (std::size_t i = 0; i < domains; ++i) {
      auto faulty = std::make_unique<adapters::FaultyAdapter>(
          std::make_unique<AcceptAllAdapter>("d" + std::to_string(i),
                                             line_domain_view(i, domains)));
      faults.push_back(faulty.get());
      if (!ro.add_domain(std::move(faulty)).ok()) {
        state.SkipWithError("add_domain failed");
        return;
      }
    }
    if (!ro.initialize().ok()) {
      state.SkipWithError("initialize failed");
      return;
    }
    for (std::size_t k = 0; k < kStrandedServices; ++k) {
      const std::size_t from = 1 + (k % survivors);
      const std::size_t to = 1 + ((k + 1) % survivors);
      const auto deployed = ro.deploy_pinned(
          stranded_chain(k, from, to),
          {{"nf" + std::to_string(k), "bb0"}});
      if (!deployed.ok()) {
        state.SkipWithError("deploy_pinned failed");
        return;
      }
    }
    if (!ro.open_circuit("d0", "bench kill").ok()) {
      state.SkipWithError("open_circuit failed");
      return;
    }
    faults[0]->set_failure_rate(1.0);  // the probe keeps failing
    state.ResumeTiming();

    const auto healed = ro.heal();
    if (!healed.ok() || healed->healed.size() != kStrandedServices) {
      state.SkipWithError("heal did not recover every stranded service");
      return;
    }
    max_dip_cpu = std::max(max_dip_cpu, healed->max_capacity_dip_cpu);
    ++heals;
  }
  state.counters["survivors"] = static_cast<double>(survivors);
  state.counters["stranded_services"] =
      static_cast<double>(kStrandedServices);
  state.counters["heals"] = static_cast<double>(heals);
  state.counters["max_dip_cpu"] = max_dip_cpu;
}

}  // namespace

BENCHMARK_CAPTURE(BM_HealStrandedServices, mbb, true)
    ->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK_CAPTURE(BM_HealStrandedServices, teardown_first, false)
    ->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond)->UseRealTime();

BENCHMARK_MAIN();
