// E6 — the narrow waist's serialization tax.
//
// The same NFFG data model crosses every layer boundary (DESIGN.md §6.1),
// so get-config/edit-config cost scales with model size. Measured here:
// JSON encode/decode of NFFGs vs node count, and full RPC round trips
// (frame + parse + dispatch + reply) over the simulated channel, including
// a fragmented-channel variant that stresses reassembly.
#include <benchmark/benchmark.h>

#include "infra/topologies.h"
#include "model/nffg_builder.h"
#include "model/nffg_json.h"
#include "proto/channel.h"
#include "proto/rpc.h"

namespace {

using namespace unify;

model::Nffg sized_nffg(int nodes) {
  infra::topo::TopoParams params;
  model::Nffg g = infra::topo::ring(nodes, 2, params);
  // Populate with NFs and flowrules so the tree is configuration-shaped,
  // not just topology-shaped.
  int i = 0;
  for (auto& [bb_id, bb] : g.bisbis()) {
    const std::string nf_id = "nf" + std::to_string(i++);
    (void)g.place_nf(bb_id, model::make_nf(nf_id, "firewall",
                                           {1, 512, 1}, 2));
    (void)g.add_flowrule(bb_id, model::Flowrule{nf_id + "-in",
                                                {bb_id, 0},
                                                {nf_id, 0},
                                                "", "t", 10});
    (void)g.add_flowrule(bb_id, model::Flowrule{nf_id + "-out",
                                                {nf_id, 1},
                                                {bb_id, 1},
                                                "t", "-", 10});
  }
  return g;
}

void BM_NffgEncode(benchmark::State& state) {
  const model::Nffg g = sized_nffg(static_cast<int>(state.range(0)));
  std::size_t bytes = 0;
  for (auto _ : state) {
    const std::string wire = model::to_json_string(g);
    bytes = wire.size();
    benchmark::DoNotOptimize(wire);
  }
  state.counters["wire_bytes"] = static_cast<double>(bytes);
}

void BM_NffgDecode(benchmark::State& state) {
  const std::string wire =
      model::to_json_string(sized_nffg(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    auto decoded = model::nffg_from_json_string(wire);
    if (!decoded.ok()) state.SkipWithError("decode failed");
    benchmark::DoNotOptimize(decoded);
  }
  state.counters["wire_bytes"] = static_cast<double>(wire.size());
}

void rpc_roundtrip(benchmark::State& state, std::size_t chunk_size) {
  SimClock clock;
  auto [north, south] = proto::make_channel_pair(clock, 100, chunk_size);
  proto::RpcPeer client(north, "client");
  proto::RpcPeer server(south, "server");
  const model::Nffg g = sized_nffg(static_cast<int>(state.range(0)));
  server.on_request("get-config",
                    [&g](const json::Value&) -> Result<json::Value> {
                      json::Object out;
                      out.set("config", model::to_json(g));
                      return json::Value{std::move(out)};
                    });
  for (auto _ : state) {
    auto reply = client.call_and_wait("get-config",
                                      json::Value{json::Object{}});
    if (!reply.ok()) {
      state.SkipWithError("rpc failed");
      break;
    }
    auto decoded = model::nffg_from_json(*reply->get("config"));
    if (!decoded.ok()) {
      state.SkipWithError("decode failed");
      break;
    }
    benchmark::DoNotOptimize(decoded);
  }
  // Request bytes leave the client endpoint, response bytes the server's.
  state.counters["bytes_per_call"] =
      static_cast<double>(client.counters().bytes_sent +
                          server.counters().bytes_sent) /
      static_cast<double>(std::max<std::uint64_t>(
          1, client.counters().messages_sent));
}

void BM_GetConfigRoundTrip(benchmark::State& state) {
  rpc_roundtrip(state, 0);
}

void BM_GetConfigFragmented(benchmark::State& state) {
  rpc_roundtrip(state, 1400);  // MTU-ish fragments
}

BENCHMARK(BM_NffgEncode)->Arg(4)->Arg(16)->Arg(64)->Arg(256)->Unit(
    benchmark::kMicrosecond);
BENCHMARK(BM_NffgDecode)->Arg(4)->Arg(16)->Arg(64)->Arg(256)->Unit(
    benchmark::kMicrosecond);
BENCHMARK(BM_GetConfigRoundTrip)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_GetConfigFragmented)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
