// E7 — the delta-based edit-config ablation (DESIGN.md §6.4).
//
// A manager keeps re-sending its (growing) full desired configuration; the
// adapter either computes the difference against what is already deployed
// (the UNIFY design) or naively tears down and reinstalls everything. The
// series of interest is native domain operations and simulated control
// latency per *newly added* service when N services already run: O(1) for
// the delta strategy vs O(N) for the naive one.
#include <benchmark/benchmark.h>

#include "adapters/un_adapter.h"
#include "infra/universal_node.h"
#include "model/nffg_builder.h"

namespace {

using namespace unify;

/// Adds one more NF + its two steering rules to the config.
void add_service(model::Nffg& config, const std::string& node, int index) {
  const std::string nf_id = "nf" + std::to_string(index);
  (void)config.place_nf(node, model::make_nf(nf_id, "monitor",
                                             {0.05, 16, 0.1}, 2),
                        /*force=*/true);
  (void)config.add_flowrule(node, model::Flowrule{nf_id + "-in",
                                                  {node, 0},
                                                  {nf_id, 0},
                                                  "", nf_id, 1});
  (void)config.add_flowrule(node, model::Flowrule{nf_id + "-out",
                                                  {nf_id, 1},
                                                  {node, 1},
                                                  nf_id, "-", 1});
}

void run(benchmark::State& state, bool full_reinstall) {
  const int preexisting = static_cast<int>(state.range(0));
  std::uint64_t ops_for_last = 0;
  SimTime sim_for_last = 0;
  for (auto _ : state) {
    state.PauseTiming();
    SimClock clock;
    infra::UnConfig config;
    config.lsi_ports = 512;
    infra::UniversalNode un(clock, "un", model::Resources{64, 65536, 500},
                            config);
    adapters::UnAdapter adapter(un);
    adapter.set_full_reinstall(full_reinstall);
    adapter.map_sap(0, "in", {10000, 0.1});
    adapter.map_sap(1, "out", {10000, 0.1});
    auto view = adapter.fetch_view();
    if (!view.ok()) {
      state.SkipWithError("view failed");
      break;
    }
    model::Nffg desired = *view;
    for (int i = 0; i < preexisting; ++i) {
      add_service(desired, adapter.bisbis_id(), i);
    }
    if (!adapter.apply(desired).ok()) {
      state.SkipWithError("preload failed");
      break;
    }
    const std::uint64_t ops_before = adapter.native_operations();
    const SimTime sim_before = clock.now();
    add_service(desired, adapter.bisbis_id(), preexisting);
    state.ResumeTiming();

    if (!adapter.apply(desired).ok()) {
      state.SkipWithError("apply failed");
      break;
    }

    state.PauseTiming();
    ops_for_last = adapter.native_operations() - ops_before;
    sim_for_last = clock.now() - sim_before;
    state.ResumeTiming();
  }
  state.counters["native_ops_for_new_service"] =
      static_cast<double>(ops_for_last);
  state.counters["sim_ms_for_new_service"] =
      static_cast<double>(sim_for_last) / 1000.0;
}

void BM_DeltaEditConfig(benchmark::State& state) { run(state, false); }
void BM_FullReinstall(benchmark::State& state) { run(state, true); }

BENCHMARK(BM_DeltaEditConfig)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FullReinstall)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
