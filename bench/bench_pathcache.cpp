// E5 — the path engine under the microscope.
//
// Three layers of the same query, bottom up: the devirtualized
// allocation-free kernel with a reused workspace, the type-erased
// EdgeScanFn shim kept for API compatibility, and the memoized
// Context::distance() front most mappers actually call. The spread between
// them is the price of std::function indirection and the payoff of the
// (src, dst, bandwidth)-keyed cache; a route/unroute cycle shows what
// invalidation costs when reservations churn.
#include <benchmark/benchmark.h>

#include "graph/algorithms.h"
#include "graph/path_kernel.h"
#include "infra/topologies.h"
#include "mapping/context.h"
#include "model/topology_index.h"

namespace {

using namespace unify;

model::Nffg make_substrate(int nodes) {
  Rng rng(11);
  return infra::topo::random_connected(nodes, 3.0, 2, rng);
}

/// Devirtualized kernel: template scan, reused workspace, no per-call
/// allocations once warm.
void BM_KernelDijkstra(benchmark::State& state) {
  const model::Nffg substrate = make_substrate(static_cast<int>(state.range(0)));
  const model::TopologyIndex index(substrate);
  const auto src = index.node_of("sap1");
  const auto dst = index.node_of("sap2");
  const auto scan = index.delay_scan(10);
  graph::PathWorkspace workspace;
  for (auto _ : state) {
    auto path = graph::shortest_path(workspace, index.graph().node_capacity(),
                                     src, dst, scan);
    benchmark::DoNotOptimize(path);
  }
  state.SetLabel("n=" + std::to_string(state.range(0)));
}

/// Same query through the legacy EdgeScanFn shim: identical algorithm, but
/// every edge visit crosses two std::function boundaries.
void BM_ShimDijkstra(benchmark::State& state) {
  const model::Nffg substrate = make_substrate(static_cast<int>(state.range(0)));
  const model::TopologyIndex index(substrate);
  const auto src = index.node_of("sap1");
  const auto dst = index.node_of("sap2");
  const graph::EdgeScanFn scan = index.scan_by_delay(10);
  for (auto _ : state) {
    auto path = graph::shortest_path(index.graph().node_capacity(), src, dst,
                                     scan);
    benchmark::DoNotOptimize(path);
  }
  state.SetLabel("n=" + std::to_string(state.range(0)));
}

/// Distance-only kernel variant (no path reconstruction).
void BM_KernelDistance(benchmark::State& state) {
  const model::Nffg substrate = make_substrate(static_cast<int>(state.range(0)));
  const model::TopologyIndex index(substrate);
  const auto src = index.node_of("sap1");
  const auto dst = index.node_of("sap2");
  const auto scan = index.delay_scan(10);
  graph::PathWorkspace workspace;
  for (auto _ : state) {
    const double d = graph::shortest_distance(
        workspace, index.graph().node_capacity(), src, dst, scan);
    benchmark::DoNotOptimize(d);
  }
  state.SetLabel("n=" + std::to_string(state.range(0)));
}

/// Context::distance() with a hot cache: after the first lap every query is
/// a lookup. This is the mapper-visible cost of repeated cost estimates.
void BM_ContextDistanceWarm(benchmark::State& state) {
  const model::Nffg substrate = make_substrate(static_cast<int>(state.range(0)));
  const sg::ServiceGraph sg =
      sg::make_chain("svc", "sap1", {"fw-lite"}, "sap2", 10, 10000);
  const catalog::NfCatalog cat = catalog::default_catalog();
  mapping::Context ctx(sg, substrate, cat);
  for (auto _ : state) {
    const double d = ctx.distance("sap1", "sap2", 10);
    benchmark::DoNotOptimize(d);
  }
  const auto& stats = ctx.path_cache_stats();
  state.counters["hits"] = static_cast<double>(stats.hits);
  state.counters["misses"] = static_cast<double>(stats.misses);
  state.SetLabel("n=" + std::to_string(state.range(0)));
}

/// Cache-defeating variant: every query uses a fresh bandwidth class, so
/// each one is a miss (kernel run + insertion). Upper bound on the cost of
/// a query mix with no reuse.
void BM_ContextDistanceCold(benchmark::State& state) {
  const model::Nffg substrate = make_substrate(static_cast<int>(state.range(0)));
  const sg::ServiceGraph sg =
      sg::make_chain("svc", "sap1", {"fw-lite"}, "sap2", 10, 10000);
  const catalog::NfCatalog cat = catalog::default_catalog();
  mapping::Context ctx(sg, substrate, cat);
  double bw = 0;
  for (auto _ : state) {
    bw += 1e-7;  // distinct key every iteration; floor stays ~0
    const double d = ctx.distance("sap1", "sap2", bw);
    benchmark::DoNotOptimize(d);
  }
  const auto& stats = ctx.path_cache_stats();
  state.counters["misses"] = static_cast<double>(stats.misses);
  state.SetLabel("n=" + std::to_string(state.range(0)));
}

/// A full place/route/unroute cycle: route reserves bandwidth and evicts
/// crossing entries, unroute releases and flushes. Invalidation counters
/// tell how much of the cache churns per cycle.
void BM_RouteUnrouteCycle(benchmark::State& state) {
  const model::Nffg substrate = make_substrate(static_cast<int>(state.range(0)));
  const sg::ServiceGraph sg =
      sg::make_chain("svc", "sap1", {"fw-lite", "monitor"}, "sap2", 10, 10000);
  const catalog::NfCatalog cat = catalog::default_catalog();
  mapping::Context ctx(sg, substrate, cat);
  const auto hosts1 = ctx.candidates(*sg.find_nf("fw-lite0"));
  const auto hosts2 = ctx.candidates(*sg.find_nf("monitor1"));
  if (hosts1.empty() || hosts2.empty()) {
    state.SkipWithError("no feasible hosts");
    return;
  }
  if (!ctx.place("fw-lite0", hosts1.front()).ok() ||
      !ctx.place("monitor1", hosts2.back()).ok()) {
    state.SkipWithError("placement failed");
    return;
  }
  for (auto _ : state) {
    // Warm the cache like a mapper probing alternatives would...
    benchmark::DoNotOptimize(ctx.distance("sap1", "sap2", 10));
    // ...then commit and roll back a routing.
    if (!ctx.route_all().ok()) {
      state.SkipWithError("routing failed");
      return;
    }
    for (const sg::SgLink& link : sg.links()) ctx.unroute(link.id);
  }
  const auto& stats = ctx.path_cache_stats();
  state.counters["invalidations"] = static_cast<double>(stats.invalidations);
  state.counters["hits"] = static_cast<double>(stats.hits);
  state.counters["misses"] = static_cast<double>(stats.misses);
  state.SetLabel("n=" + std::to_string(state.range(0)));
}

/// Per-entry invalidation payoff: warm the cache with queries across many
/// SAP pairs, then run a reserve/release cycle on one chain. route() only
/// evicts entries whose path crosses the reserved links, and unroute()
/// only evicts entries the release could actually unmask (tracked per
/// entry), so "invalidations" stays far below the warmed entry count —
/// before per-entry tracking, every release above the residual threshold
/// flushed the whole cache.
void BM_SelectiveInvalidation(benchmark::State& state) {
  Rng rng(11);
  const model::Nffg substrate = infra::topo::random_connected(
      static_cast<int>(state.range(0)), 3.0, 8, rng);
  const sg::ServiceGraph sg =
      sg::make_chain("svc", "sap1", {"fw-lite"}, "sap2", 10, 10000);
  const catalog::NfCatalog cat = catalog::default_catalog();
  mapping::Context ctx(sg, substrate, cat);
  const auto hosts = ctx.candidates(*sg.find_nf("fw-lite0"));
  if (hosts.empty() || !ctx.place("fw-lite0", hosts.front()).ok()) {
    state.SkipWithError("placement failed");
    return;
  }
  std::uint64_t warmed = 0;
  for (auto _ : state) {
    // Warm entries across every SAP pair (distinct cache keys)...
    for (int a = 1; a <= 8; ++a) {
      for (int b = a + 1; b <= 8; ++b) {
        benchmark::DoNotOptimize(ctx.distance("sap" + std::to_string(a),
                                              "sap" + std::to_string(b), 10));
        ++warmed;
      }
    }
    // ...then churn one chain's reservations.
    if (!ctx.route_all().ok()) {
      state.SkipWithError("routing failed");
      return;
    }
    for (const sg::SgLink& link : sg.links()) ctx.unroute(link.id);
  }
  const auto& stats = ctx.path_cache_stats();
  state.counters["warmed"] = static_cast<double>(warmed);
  state.counters["invalidations"] = static_cast<double>(stats.invalidations);
  state.counters["hits"] = static_cast<double>(stats.hits);
  state.SetLabel("n=" + std::to_string(state.range(0)));
}

}  // namespace

BENCHMARK(BM_KernelDijkstra)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_ShimDijkstra)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_KernelDistance)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_ContextDistanceWarm)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_ContextDistanceCold)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_RouteUnrouteCycle)->Arg(16)->Arg(64);
BENCHMARK(BM_SelectiveInvalidation)->Arg(64)->Arg(256);

BENCHMARK_MAIN();
