// Scale headline for the sharded copy-on-write orchestrator state: seeded
// multi-domain substrates from 10^4 up to 10^6 BiS-BiS nodes.
//
// Series, bottom up:
//  * BM_SnapshotAcquire — steady-state cost of freezing a reader snapshot
//    of an N-node view: two shared_ptr copies once the topology index is
//    built, independent of N.
//  * BM_SnapshotHeldClone — the price the CoW pays when a mutation lands
//    while a snapshot is still alive: one full view clone (O(N)). The gap
//    to BM_SnapshotAcquire is why map_batch scopes its snapshot to the
//    speculative phase only.
//  * BM_MapBatch — embeddings/sec for a 32-request wave on a 10^5-node
//    substrate vs worker count: the parallel-speculation speedup-vs-cores
//    headline (workers is the benchmark argument).
//  * BM_ResyncClean — resync_domains() with every domain clean: the
//    per-shard stamp fast path answers without re-slicing or re-hashing a
//    single domain, so the cost is O(domains), not O(nodes).
#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/resource_orchestrator.h"
#include "core/sharded_state.h"
#include "infra/topologies.h"
#include "mapping/greedy_mapper.h"
#include "model/nffg_merge.h"
#include "service/service_layer.h"
#include "util/orchestration_pool.h"
#include "util/rng.h"

namespace {

using namespace unify;

constexpr int kDomains = 16;
constexpr int kComputePerDomain = 4;
constexpr int kBatch = 32;

/// Seeded substrate with `total` nodes across kDomains domains. NF
/// placement is restricted to kComputePerDomain nodes per domain (the
/// rest advertise a type nothing requests), so candidate scans stay
/// bounded while routing still crosses whole domains. Cached: the larger
/// sizes take seconds to generate.
const model::Nffg& substrate(int total) {
  static std::map<int, model::Nffg> cache;
  const auto it = cache.find(total);
  if (it != cache.end()) return it->second;
  Rng rng(7);
  model::Nffg g = infra::topo::multi_domain(kDomains, total / kDomains, 3.0,
                                            2 * kDomains, rng);
  for (auto& [id, bb] : g.bisbis()) {
    const auto pos = id.rfind("-bb");
    const int index = std::stoi(id.substr(pos + 3));
    if (index < 1 || index > kComputePerDomain) {
      bb.nf_types = {"switch-only"};
    }
  }
  return cache.emplace(total, std::move(g)).first->second;
}

class AcceptAllAdapter final : public adapters::DomainAdapter {
 public:
  AcceptAllAdapter(std::string name, model::Nffg view)
      : name_(std::move(name)), view_(std::move(view)) {}
  [[nodiscard]] const std::string& domain() const noexcept override {
    return name_;
  }
  [[nodiscard]] Result<model::Nffg> fetch_view() override { return view_; }
  Result<void> apply(const model::Nffg&) override {
    return Result<void>::success();
  }
  [[nodiscard]] std::uint64_t native_operations() const noexcept override {
    return 0;
  }

 private:
  std::string name_;
  model::Nffg view_;
};

std::unique_ptr<core::ResourceOrchestrator> make_ro(
    int total, util::OrchestrationPool* pool) {
  core::RoOptions options;
  options.pool = pool;
  options.use_decomposition = false;
  auto ro = std::make_unique<core::ResourceOrchestrator>(
      "scale-ro", std::make_shared<mapping::GreedyMapper>(),
      catalog::default_catalog(), options);
  const model::Nffg& full = substrate(total);
  for (int d = 0; d < kDomains; ++d) {
    const std::string domain = "d" + std::to_string(d);
    auto added = ro->add_domain(std::make_unique<AcceptAllAdapter>(
        domain, model::slice_for_domain(full, domain)));
    if (!added.ok()) return nullptr;
  }
  if (!ro->initialize().ok()) return nullptr;
  return ro;
}

/// One wave of kBatch independent chains, each within a single domain
/// (SAP s sits in domain s % kDomains, so sap<d+1> and sap<d+17> share
/// domain d). NF/link ids are namespaced per request.
std::vector<sg::ServiceGraph> wave() {
  std::vector<sg::ServiceGraph> requests;
  requests.reserve(kBatch);
  for (int i = 0; i < kBatch; ++i) {
    const int d = i % kDomains;
    const std::string id = "svc" + std::to_string(i);
    requests.push_back(service::prefix_elements(
        sg::make_chain(id, "sap" + std::to_string(d + 1), {"fw-lite"},
                       "sap" + std::to_string(d + kDomains + 1), 5, 1e9),
        id));
  }
  return requests;
}

void BM_SnapshotAcquire(benchmark::State& state) {
  core::ShardedViewState view;
  view.reset(substrate(static_cast<int>(state.range(0))));
  // First acquire builds the shared topology index; keep it out of the
  // steady-state numbers.
  { const auto warm = view.snapshot(); benchmark::DoNotOptimize(warm); }
  for (auto _ : state) {
    const model::ViewSnapshot snap = view.snapshot();
    benchmark::DoNotOptimize(snap.epoch);
  }
  const auto& t = view.telemetry();
  state.counters["index_builds"] = static_cast<double>(t.index_builds);
  state.counters["clones"] = static_cast<double>(t.clones);
  state.SetLabel("n=" + std::to_string(state.range(0)));
}

void BM_SnapshotHeldClone(benchmark::State& state) {
  core::ShardedViewState view;
  view.reset(substrate(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    const model::ViewSnapshot snap = view.snapshot();
    // A mutation while the snapshot is alive must clone the whole view.
    model::Nffg& mut = view.mut();
    benchmark::DoNotOptimize(mut.id());
  }
  state.counters["clones"] =
      static_cast<double>(view.telemetry().clones);
  state.SetLabel("n=" + std::to_string(state.range(0)));
}

void BM_MapBatch(benchmark::State& state) {
  const int total = 100000;
  const auto workers = static_cast<std::size_t>(state.range(0));
  util::OrchestrationPool pool(8);
  auto ro = make_ro(total, &pool);
  if (ro == nullptr) {
    state.SkipWithError("RO setup failed");
    return;
  }
  const auto requests = wave();
  std::uint64_t deployed = 0;
  for (auto _ : state) {
    const auto results = ro->map_batch(requests, workers);
    state.PauseTiming();
    for (const auto& result : results) {
      if (!result.ok()) {
        state.SkipWithError(result.error().to_string().c_str());
        return;
      }
      ++deployed;
      if (!ro->remove(*result).ok()) {
        state.SkipWithError("remove failed");
        return;
      }
    }
    state.ResumeTiming();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(deployed));
  const auto& t = ro->view_state().telemetry();
  state.counters["snapshots"] = static_cast<double>(t.snapshots);
  state.counters["clones"] = static_cast<double>(t.clones);
  state.counters["index_builds"] = static_cast<double>(t.index_builds);
  state.SetLabel("workers=" + std::to_string(workers) +
                 " n=" + std::to_string(total));
}

void BM_ResyncClean(benchmark::State& state) {
  util::OrchestrationPool pool(4);
  auto ro = make_ro(static_cast<int>(state.range(0)), &pool);
  if (ro == nullptr) {
    state.SkipWithError("RO setup failed");
    return;
  }
  // One deployment so the view is not trivially empty, then one resync to
  // reach the all-acked steady state.
  const auto requests = wave();
  const auto first = ro->deploy(requests.front());
  if (!first.ok() || !ro->resync_domains().ok()) {
    state.SkipWithError("seed deploy failed");
    return;
  }
  for (auto _ : state) {
    const auto resynced = ro->resync_domains();
    if (!resynced.ok()) {
      state.SkipWithError("resync failed");
      return;
    }
  }
  state.counters["skipped_clean"] = static_cast<double>(
      ro->metrics().counter("ro.push.skipped_clean"));
  state.SetLabel("n=" + std::to_string(state.range(0)));
}

}  // namespace

BENCHMARK(BM_SnapshotAcquire)->Arg(10000)->Arg(100000)->Arg(1000000);
BENCHMARK(BM_SnapshotHeldClone)->Arg(10000)->Arg(100000);
BENCHMARK(BM_MapBatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8);
BENCHMARK(BM_ResyncClean)->Arg(10000)->Arg(100000);

BENCHMARK_MAIN();
