// E2 — end-to-end service deployment over the unified multi-domain stack
// (paper showcase ii).
//
// Each iteration submits a chain through the service layer (Unify RPC ->
// virtualizer -> RO -> adapters -> simulated domains), drains the
// infrastructure events, verifies readiness and tears the service down.
// Series: wall time per deployment vs chain length and vs target domain;
// counters: simulated control-plane time and native operations per
// deployment (dominated by VM boots on the cloud path vs container starts
// on the UN path — the asymmetry the Universal Node exists to remove).
#include <benchmark/benchmark.h>

#include "service/fig1.h"

namespace {

using namespace unify;

void run_deploy_cycle(benchmark::State& state, const std::string& to_sap,
                      int chain_length) {
  auto stack = service::make_fig1_stack();
  if (!stack.ok()) {
    state.SkipWithError("stack assembly failed");
    return;
  }
  service::Fig1Stack& s = **stack;
  std::vector<std::string> nf_types;
  for (int i = 0; i < chain_length; ++i) {
    nf_types.push_back(i % 2 == 0 ? "fw-lite" : "monitor");
  }

  std::uint64_t iteration = 0;
  SimTime sim_total = 0;
  std::uint64_t native_total = 0;
  for (auto _ : state) {
    const std::string id = "svc" + std::to_string(iteration++);
    const SimTime sim_before = s.clock.now();
    const std::uint64_t native_before = s.emu->operations() +
                                        s.sdn->flow_ops() +
                                        s.cloud->api_calls() +
                                        s.un->operations();
    auto submitted = s.service_layer->submit(
        sg::make_chain(id, "sap1", nf_types, to_sap, 10, 100));
    if (!submitted.ok()) {
      state.SkipWithError(submitted.error().to_string().c_str());
      break;
    }
    s.clock.run_until_idle();
    sim_total += s.clock.now() - sim_before;
    native_total += s.emu->operations() + s.sdn->flow_ops() +
                    s.cloud->api_calls() + s.un->operations() -
                    native_before;
    if (!s.service_layer->remove(id).ok()) {
      state.SkipWithError("teardown failed");
      break;
    }
    s.clock.run_until_idle();
  }
  if (iteration > 0) {
    state.counters["sim_ms_per_deploy"] =
        static_cast<double>(sim_total) / 1000.0 /
        static_cast<double>(iteration);
    state.counters["native_ops_per_deploy"] =
        static_cast<double>(native_total) / static_cast<double>(iteration);
  }
}

void BM_DeployToCloud(benchmark::State& state) {
  run_deploy_cycle(state, "sap2", static_cast<int>(state.range(0)));
}

void BM_DeployToUniversalNode(benchmark::State& state) {
  run_deploy_cycle(state, "sap3", static_cast<int>(state.range(0)));
}

BENCHMARK(BM_DeployToCloud)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DeployToUniversalNode)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
