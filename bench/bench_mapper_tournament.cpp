// E8 — mapper tournament: embedding quality × wall time for every
// algorithm in the portfolio, plus the portfolio racer itself, over seeded
// multi-domain substrates. Run with --benchmark_format=json for the
// machine-readable table; the counters carry the quality axis
// (feasible/cost/delay/total) next to google-benchmark's time axis.
//
// The regret benchmark is the portfolio's core promise quantified: the
// race winner's score minus the best individual racer's score on the same
// instance. Within a generous deadline this must be zero — the portfolio
// is never worse than its best member.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "infra/topologies.h"
#include "mapping/portfolio.h"
#include "util/rng.h"

namespace {

using namespace unify;

/// The racers in their standard order plus the portfolio itself as the
/// final lane, so one Args axis sweeps the whole field.
std::unique_ptr<mapping::Mapper> make_contestant(int which) {
  auto field = mapping::PortfolioMapper::standard_racers();
  if (which < static_cast<int>(field.size())) {
    // standard_racers hands out shared_ptr lanes; keep the picked one.
    struct Holder final : mapping::Mapper {
      explicit Holder(std::shared_ptr<const mapping::Mapper> inner)
          : inner_(std::move(inner)) {}
      [[nodiscard]] std::string name() const override {
        return inner_->name();
      }
      [[nodiscard]] Result<mapping::Mapping> map(
          const sg::ServiceGraph& sg, const mapping::SubstrateView& substrate,
          const catalog::NfCatalog& cat) const override {
        return inner_->map(sg, substrate, cat);
      }
      std::shared_ptr<const mapping::Mapper> inner_;
    };
    return std::make_unique<Holder>(field[static_cast<std::size_t>(which)]);
  }
  mapping::PortfolioOptions options;
  options.deadline_us = 50'000;  // generous: every racer finishes
  return std::make_unique<mapping::PortfolioMapper>(std::move(field),
                                                    options);
}

model::Nffg make_substrate(int which) {
  Rng rng(0x70D0 + static_cast<std::uint64_t>(which));
  switch (which) {
    case 0: return infra::topo::multi_domain(2, 5, 3.0, 2, rng);
    default: return infra::topo::multi_domain(4, 6, 3.0, 2, rng);
  }
}

const char* substrate_name(int which) {
  return which == 0 ? "2x5-domains" : "4x6-domains";
}

sg::ServiceGraph make_request(int length, std::uint64_t seed) {
  static const std::vector<std::string> kTypes = {"nat", "monitor", "vpn",
                                                  "fw-lite"};
  Rng rng(seed);
  std::vector<std::string> nf_types;
  for (int i = 0; i < length; ++i) {
    nf_types.push_back(kTypes[rng.next_below(kTypes.size())]);
  }
  return sg::make_chain("svc", "sap1", nf_types, "sap2",
                        10 + static_cast<double>(rng.next_below(40)), 500);
}

/// Args: {contestant, substrate, chain length}. Quality counters come from
/// the last successful lap (the instance is fixed, so every lap agrees).
void BM_Tournament(benchmark::State& state) {
  const auto contestant = make_contestant(static_cast<int>(state.range(0)));
  const model::Nffg substrate =
      make_substrate(static_cast<int>(state.range(1)));
  const int length = static_cast<int>(state.range(2));
  const catalog::NfCatalog cat = catalog::default_catalog();
  const sg::ServiceGraph sg =
      make_request(length, 0x5eed + static_cast<std::uint64_t>(length));

  std::size_t failures = 0;
  mapping::EmbeddingScore score;
  bool feasible = false;
  for (auto _ : state) {
    auto mapping = contestant->map(sg, substrate, cat);
    if (!mapping.ok()) {
      ++failures;
    } else {
      feasible = true;
      score = mapping::score_mapping(*mapping, substrate);
    }
    benchmark::DoNotOptimize(mapping);
  }
  state.SetLabel(std::string(substrate_name(static_cast<int>(state.range(1)))) +
                 "/" + contestant->name());
  state.counters["feasible"] = feasible ? 1 : 0;
  state.counters["failed"] = static_cast<double>(failures);
  state.counters["cost"] = score.cost;
  state.counters["delay_ms"] = score.delay;
  state.counters["total"] = score.total();
}

/// Portfolio regret over a sweep of seeded instances: winner total minus
/// the best feasible individual total, accumulated as max and mean. Within
/// the deadline the winner IS the best individual, so both must be zero.
void BM_PortfolioRegret(benchmark::State& state) {
  mapping::PortfolioOptions options;
  options.deadline_us = 50'000;
  const mapping::PortfolioMapper portfolio(
      mapping::PortfolioMapper::standard_racers(), options);
  const model::Nffg substrate =
      make_substrate(static_cast<int>(state.range(0)));
  const catalog::NfCatalog cat = catalog::default_catalog();

  double regret_max = 0;
  double regret_sum = 0;
  std::size_t races = 0;
  std::size_t infeasible = 0;
  for (auto _ : state) {
    for (std::uint64_t seed = 1; seed <= 16; ++seed) {
      const sg::ServiceGraph sg =
          make_request(1 + static_cast<int>(seed % 4), seed);
      const auto report = portfolio.race(sg, substrate, cat);
      if (!report.ok()) {
        ++infeasible;
        continue;
      }
      double best = -1;
      for (const mapping::RacerOutcome& outcome : report->outcomes) {
        if (!outcome.feasible) continue;
        if (best < 0 || outcome.score.total() < best) {
          best = outcome.score.total();
        }
      }
      const double won =
          report->outcomes[static_cast<std::size_t>(report->winner)]
              .score.total();
      const double regret = won - best;
      regret_sum += regret;
      if (regret > regret_max) regret_max = regret;
      ++races;
    }
  }
  state.SetLabel(substrate_name(static_cast<int>(state.range(0))));
  state.counters["races"] = static_cast<double>(races);
  state.counters["infeasible"] = static_cast<double>(infeasible);
  state.counters["regret_max"] = regret_max;
  state.counters["regret_mean"] =
      races > 0 ? regret_sum / static_cast<double>(races) : 0;
}

void tournament_args(benchmark::internal::Benchmark* bench) {
  const int contestants =
      static_cast<int>(mapping::PortfolioMapper::standard_racers().size()) +
      1;  // the portfolio races as the last lane
  for (int contestant = 0; contestant < contestants; ++contestant) {
    for (int substrate = 0; substrate < 2; ++substrate) {
      for (const int length : {2, 4}) {
        bench->Args({contestant, substrate, length});
      }
    }
  }
}

BENCHMARK(BM_Tournament)
    ->Apply(tournament_args)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_PortfolioRegret)
    ->Args({0})
    ->Args({1})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
