// The price of a hostile wire: the same closed-loop RPC exchange driven
// through ResilientSession over fault-injected channels (DESIGN.md §14),
// across three profiles — clean, 1% connection resets, 50ms delivery
// jitter. Counters report p50/p99 RPC round-trip in *simulated* time (the
// wire's contribution, independent of host speed) plus the recovery tax:
// how long a session stays dark from a fault-induced failure to its first
// successful call after reconnect, and how many reconnects the run needed.
// Host wall time per iteration still measures the CPU cost of the fault
// and reconnect machinery itself.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "proto/channel.h"
#include "proto/fault_transport.h"
#include "proto/resilient_session.h"

namespace {

using namespace unify;

constexpr int kSessions = 8;
constexpr int kCallsPerSession = 16;

proto::FaultProfile profile_for(int index) {
  proto::FaultProfile profile;
  profile.latency_us = 100;
  switch (index) {
    case 0:  // clean
      break;
    case 1:  // 1% abrupt resets
      profile.reset_rate = 0.01;
      break;
    default:  // heavy delivery jitter
      profile.jitter_us = 50'000;
      break;
  }
  return profile;
}

const char* profile_name(int index) {
  switch (index) {
    case 0: return "clean";
    case 1: return "reset1pct";
    default: return "jitter50ms";
  }
}

double percentile(std::vector<double>& values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  return values[static_cast<std::size_t>(
      p * static_cast<double>(values.size() - 1))];
}

void BM_WireFaultProfiles(benchmark::State& state) {
  const proto::FaultProfile profile =
      profile_for(static_cast<int>(state.range(0)));
  state.SetLabel(profile_name(static_cast<int>(state.range(0))));

  SimClock clock;
  proto::SimDriver driver(clock);
  std::vector<std::shared_ptr<proto::Endpoint>> server_ends;
  std::vector<std::unique_ptr<proto::RpcPeer>> servers;
  std::vector<std::shared_ptr<proto::FaultInjector>> injectors;
  std::vector<std::unique_ptr<proto::ResilientSession>> sessions;
  for (int i = 0; i < kSessions; ++i) {
    injectors.push_back(std::make_shared<proto::FaultInjector>(
        profile, 0x5eedULL + static_cast<std::uint64_t>(i)));
    auto factory = [&, i]() -> Result<std::shared_ptr<proto::Transport>> {
      auto [a, b] = proto::make_channel_pair(clock, 100);
      server_ends.push_back(b);
      servers.push_back(std::make_unique<proto::RpcPeer>(b, "server"));
      servers.back()->on_request(
          "get-config", [](const json::Value&) -> Result<json::Value> {
            return json::Value{json::Object{}};
          });
      return std::static_pointer_cast<proto::Transport>(
          proto::FaultTransport::wrap(
              a, injectors[static_cast<std::size_t>(i)]));
    };
    sessions.push_back(std::make_unique<proto::ResilientSession>(
        "bench-" + std::to_string(i), driver, std::move(factory)));
  }

  std::vector<double> rtts_us, recovery_us;
  std::uint64_t failed_calls = 0;
  for (auto _ : state) {
    for (auto& session : sessions) {
      for (int call = 0; call < kCallsPerSession; ++call) {
        const SimTime before = clock.now();
        auto reply = session->call_and_wait(
            "get-config", json::Value{json::Object{}},
            /*timeout_us=*/500'000);
        if (reply.ok()) {
          rtts_us.push_back(static_cast<double>(clock.now() - before));
          continue;
        }
        // A fault killed the exchange: measure failure -> reconnect ->
        // first successful call (the session's real dark window).
        ++failed_calls;
        const SimTime dark_from = clock.now();
        for (int spin = 0; spin < 1000; ++spin) {
          if (session->connected()) {
            auto retry = session->call_and_wait(
                "get-config", json::Value{json::Object{}}, 500'000);
            if (retry.ok()) break;
            ++failed_calls;
          }
          clock.advance(5'000);
        }
        recovery_us.push_back(static_cast<double>(clock.now() - dark_from));
      }
    }
  }

  std::uint64_t reconnects = 0, faults = 0;
  for (const auto& session : sessions) reconnects += session->reconnects();
  for (const auto& injector : injectors) faults += injector->faults_injected();

  state.SetItemsProcessed(state.iterations() * kSessions * kCallsPerSession);
  state.counters["rtt_p50_us"] = percentile(rtts_us, 0.50);
  state.counters["rtt_p99_us"] = percentile(rtts_us, 0.99);
  state.counters["recover_p50_us"] = percentile(recovery_us, 0.50);
  state.counters["faults"] = static_cast<double>(faults);
  state.counters["reconnects"] = static_cast<double>(reconnects);
  state.counters["failed_calls"] = static_cast<double>(failed_calls);
}

BENCHMARK(BM_WireFaultProfiles)->Arg(0)->Arg(1)->Arg(2)->Unit(
    benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
