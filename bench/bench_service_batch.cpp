// E7 — batch admission at the service layer (PR 2 tentpole).
//
// Each iteration deploys a wave of independent chains (one per SAP route)
// and tears it down again, either as N sequential submit() calls or as ONE
// submit_batch() — the latter validates in parallel on the shared
// orchestration pool and pushes one merged edit-config whose services the
// RO embeds concurrently via map_batch. Series: wall time per wave vs wave
// width; counters: mean submit_batch wall time as measured by the
// service.batch.wall_ms telemetry summary.
#include <benchmark/benchmark.h>

#include "service/fig1.h"
#include "telemetry/metrics.h"
#include "util/orchestration_pool.h"

namespace {

using namespace unify;

const std::vector<std::pair<std::string, std::string>> kRoutes{
    {"sap1", "sap2"}, {"sap2", "sap3"}, {"sap3", "sap1"}};

std::vector<sg::ServiceGraph> wave(std::uint64_t iteration, int width) {
  std::vector<sg::ServiceGraph> services;
  services.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    const auto& route = kRoutes[static_cast<std::size_t>(i) % kRoutes.size()];
    services.push_back(sg::make_chain(
        "w" + std::to_string(iteration) + "s" + std::to_string(i),
        route.first, {i % 2 == 0 ? "nat" : "monitor"}, route.second, 5, 100));
  }
  return services;
}

void run_wave_cycle(benchmark::State& state, bool batched) {
  auto stack = service::make_fig1_stack();
  if (!stack.ok()) {
    state.SkipWithError("stack assembly failed");
    return;
  }
  service::Fig1Stack& s = **stack;
  const int width = static_cast<int>(state.range(0));

  std::uint64_t iteration = 0;
  for (auto _ : state) {
    const auto services = wave(iteration++, width);
    if (batched) {
      const auto results = s.service_layer->submit_batch(services);
      for (const auto& result : results) {
        if (!result.ok()) {
          state.SkipWithError(result.error().to_string().c_str());
          return;
        }
      }
    } else {
      for (const sg::ServiceGraph& service : services) {
        const auto result = s.service_layer->submit(service);
        if (!result.ok()) {
          state.SkipWithError(result.error().to_string().c_str());
          return;
        }
      }
    }
    s.clock.run_until_idle();
    for (const sg::ServiceGraph& service : services) {
      if (!s.service_layer->remove(service.id()).ok()) {
        state.SkipWithError("teardown failed");
        return;
      }
    }
    s.clock.run_until_idle();
  }

  if (batched && iteration > 0) {
    const telemetry::Summary* wall =
        s.service_layer->metrics().find_summary("service.batch.wall_ms");
    if (wall != nullptr) state.counters["batch_wall_ms_mean"] = wall->mean();
    state.counters["pool_workers"] = static_cast<double>(
        util::OrchestrationPool::process_pool().workers());
  }
}

void BM_SequentialSubmits(benchmark::State& state) {
  run_wave_cycle(state, /*batched=*/false);
}

void BM_SubmitBatch(benchmark::State& state) {
  run_wave_cycle(state, /*batched=*/true);
}

BENCHMARK(BM_SequentialSubmits)
    ->Arg(1)
    ->Arg(3)
    ->Arg(6)
    ->Arg(12)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SubmitBatch)
    ->Arg(1)
    ->Arg(3)
    ->Arg(6)
    ->Arg(12)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
